"""Serving-tier fault tolerance: deadlines, isolation, degradation, chaos.

Every failure path the churn scenario driver leans on is exercised here
directly: per-request deadlines in the batcher, per-mask failure isolation
inside a coalesced launch, graceful degradation under injected saturation,
the chaos middleware's HTTP effects, client retries, and the graceful
drain of ``python -m repro serve``.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.churn.chaos import ChaosConfig
from repro.engine.executor import KernelExecutor
from repro.engine.service import EmbeddingService
from repro.exceptions import DeadlineExceededError, InvalidParameterError
from repro.server.batcher import MicroBatcher
from repro.server.client import AsyncServeClient, ServeClient
from repro.server.gateway import BatchingGateway, GatewayConfig


def _with_gateway(config=None):
    """Run ``coro(gateway, host, port)`` against a started ephemeral gateway."""

    def runner(coro):
        async def main():
            gateway = BatchingGateway(config or GatewayConfig(port=0))
            await gateway.start()
            host, port = gateway.address
            try:
                return await coro(gateway, host, port)
            finally:
                await gateway.close()

        return asyncio.run(main())

    return runner


class TestDeadlines:
    def test_expired_request_fails_alone_while_lane_mates_complete(self):
        executor = KernelExecutor(2, 5)
        release = threading.Event()

        class SlowExecutor:
            topology_key = executor.topology_key
            topology = executor.topology

            def measure_masks_batch(self, masks):
                release.wait(timeout=10)
                return executor.measure_masks_batch(masks)

        mask = np.zeros(executor.topology.num_nodes, dtype=bool)

        async def main():
            batcher = MicroBatcher(SlowExecutor(), max_wait_s=0.0)
            # the first submit occupies the single worker thread behind
            # ``release``; the deadlined one then expires while it waits
            slow = asyncio.ensure_future(batcher.submit(mask))
            await asyncio.sleep(0.05)
            with pytest.raises(DeadlineExceededError, match="deadline"):
                await batcher.submit(mask, deadline_s=0.05)
            release.set()
            answer = await slow
            stats = batcher.stats()
            await batcher.close()
            return answer, stats

        answer, stats = asyncio.run(main())
        assert answer == executor.measure_mask_with_root(mask)
        assert stats["deadline_expired"] == 1
        assert stats["completed"] == 1

    def test_deadline_must_be_positive(self):
        async def main():
            batcher = MicroBatcher(KernelExecutor(2, 4))
            try:
                with pytest.raises(InvalidParameterError, match="deadline_s"):
                    await batcher.submit(
                        np.zeros(16, dtype=bool), deadline_s=0.0
                    )
            finally:
                await batcher.close()

        asyncio.run(main())

    def test_http_deadline_maps_to_504(self):
        # a microsecond deadline on a cold shard cannot be met: the gateway
        # must answer 504 with retry: true, and count the expiry
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                status, payload = await client.request(
                    "POST", "/measure",
                    {"topology": "debruijn", "d": 2, "n": 10, "faults": [],
                     "root": None, "deadline_ms": 0.001},
                )
                return status, payload, gateway.stats()
            finally:
                await client.close()

        status, payload, stats = _with_gateway()(scenario)
        assert status == 504
        assert payload["retry"] is True
        assert "deadline" in payload["error"]
        assert stats["shards"]["debruijn(2,10)"]["deadline_expired"] == 1


class TestFailureIsolation:
    def test_one_poisoned_mask_among_63_good_fails_alone(self):
        executor = KernelExecutor(2, 6)  # 64 nodes: one full 64-lane batch
        nodes = executor.topology.num_nodes
        good = []
        for i in range(63):
            mask = np.zeros(nodes, dtype=bool)
            mask[i % nodes] = True
            good.append(mask)
        expected = [executor.measure_mask_with_root(m) for m in good]
        poisoned = np.zeros(nodes - 1, dtype=bool)  # wrong shape

        async def main():
            batcher = MicroBatcher(executor, max_wait_s=0.2)
            results = await asyncio.gather(
                *[batcher.submit(m) for m in good],
                batcher.submit(poisoned),
                return_exceptions=True,
            )
            stats = batcher.stats()
            await batcher.close()
            return results, stats

        results, stats = asyncio.run(main())
        assert isinstance(results[-1], InvalidParameterError)
        assert "shape" in str(results[-1])
        assert results[:-1] == expected
        assert stats["isolated_failures"] == 1
        assert stats["completed"] == 63
        assert stats["launches"] == 1  # everything coalesced into one launch

    def test_every_poison_kind_is_diagnosed(self):
        executor = KernelExecutor(2, 4)
        nodes = executor.topology.num_nodes

        async def main():
            batcher = MicroBatcher(executor, max_wait_s=0.1)
            results = await asyncio.gather(
                batcher.submit([True] * nodes),  # not an ndarray
                batcher.submit(np.zeros(nodes, dtype=np.int64)),  # wrong dtype
                batcher.submit(np.zeros((2, nodes), dtype=bool)),  # wrong ndim
                batcher.submit(np.zeros(nodes, dtype=bool)),  # the control
                return_exceptions=True,
            )
            stats = batcher.stats()
            await batcher.close()
            return results, stats

        results, stats = asyncio.run(main())
        assert "numpy bool array" in str(results[0])
        assert "dtype" in str(results[1])
        assert "shape" in str(results[2])
        assert results[3] == executor.measure_mask_with_root(
            np.zeros(nodes, dtype=bool)
        )
        assert stats["isolated_failures"] == 3


class TestGracefulDegradation:
    def test_saturation_yields_a_bound_only_answer(self):
        config = GatewayConfig(
            port=0, degraded=True, chaos=ChaosConfig(seed=0, saturate_p=1.0)
        )
        payload = {"topology": "debruijn", "d": 2, "n": 6,
                   "faults": [[0, 1, 0, 1, 1, 0]], "root": None}

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                _, first = await client.request("POST", "/measure", payload)
                _, second = await client.request("POST", "/measure", payload)
                return first, second, gateway.stats()
            finally:
                await client.close()

        first, second, stats = _with_gateway(config)(scenario)
        direct = EmbeddingService().measure(
            2, 6, faults=payload["faults"], topology="debruijn"
        )
        for answer in (first, second):
            assert answer["degraded"] is True
            assert answer["cached"] is False  # degraded answers are never cached
            assert answer["region_size"] is None
            assert answer["root_eccentricity"] is None
            assert answer["root"] is None
            # the analytic fields still match the real service's
            assert answer["guarantee_bound"] == direct.guarantee_bound
            assert answer["reference_size"] == direct.reference_size
        assert stats["server"]["degraded"] == 2

    def test_normal_answers_do_not_carry_a_degraded_key(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request(
                    "POST", "/measure",
                    {"topology": "debruijn", "d": 2, "n": 5, "faults": [],
                     "root": None},
                )
            finally:
                await client.close()

        status, payload = _with_gateway()(scenario)
        assert status == 200 and "degraded" not in payload

    def test_saturation_without_degraded_mode_sheds_as_503(self):
        config = GatewayConfig(port=0, chaos=ChaosConfig(seed=0, saturate_p=1.0))

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request(
                    "POST", "/measure",
                    {"topology": "debruijn", "d": 2, "n": 5, "faults": [],
                     "root": None},
                )
            finally:
                await client.close()

        status, payload = _with_gateway(config)(scenario)
        assert status == 503 and payload["retry"] is True

    def test_embed_and_churn_have_no_degraded_fallback(self):
        # bound-only answers make no sense for a cycle: saturation sheds
        # these as retryable 503s even in degraded mode
        config = GatewayConfig(
            port=0, degraded=True, chaos=ChaosConfig(seed=0, saturate_p=1.0)
        )

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                embed = await client.request(
                    "POST", "/embed", {"d": 2, "n": 5, "faults": []}
                )
                churn = await client.request(
                    "POST", "/churn", {"d": 2, "n": 5, "op": "reset"}
                )
                return embed, churn
            finally:
                await client.close()

        (embed_status, embed), (churn_status, churn) = _with_gateway(config)(scenario)
        assert embed_status == churn_status == 503
        assert embed["retry"] is True and churn["retry"] is True


class TestChaosOverHttp:
    PAYLOAD = {"topology": "debruijn", "d": 2, "n": 5, "faults": [], "root": None}

    def test_injected_error_is_a_retryable_503(self):
        config = GatewayConfig(port=0, chaos=ChaosConfig(seed=0, error_p=1.0))

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request("POST", "/measure", self.PAYLOAD)
            finally:
                await client.close()

        status, payload = _with_gateway(config)(scenario)
        assert status == 503
        assert payload["retry"] is True and "chaos" in payload["error"]

    def test_injected_drop_resets_the_connection(self):
        config = GatewayConfig(port=0, chaos=ChaosConfig(seed=0, drop_p=1.0))

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                with pytest.raises(
                    (ConnectionError, asyncio.IncompleteReadError, IndexError)
                ):
                    await client.request("POST", "/measure", self.PAYLOAD)
            finally:
                await client.close()

        _with_gateway(config)(scenario)

    def test_injected_delay_still_answers_correctly(self):
        config = GatewayConfig(
            port=0, chaos=ChaosConfig(seed=0, delay_p=1.0, delay_ms=1.0)
        )

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request("POST", "/measure", self.PAYLOAD)
            finally:
                await client.close()

        status, payload = _with_gateway(config)(scenario)
        assert status == 200
        direct = EmbeddingService().measure(2, 5)
        assert payload["region_size"] == direct.region_size


class TestClientRetries:
    PAYLOAD = {"topology": "debruijn", "d": 2, "n": 5, "faults": [], "root": None}

    def test_client_retries_through_errors_and_the_gateway_counts_them(self):
        # seed 2 injects error, error, then passes (see ChaosInjector
        # determinism): a client with retries succeeds on attempt 2
        config = GatewayConfig(port=0, chaos=ChaosConfig(seed=2, error_p=0.5))

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(
                host, port, retries=5, backoff_base_s=0.001
            )
            try:
                status, payload = await client.request(
                    "POST", "/measure", self.PAYLOAD
                )
                return status, payload, client.retries_total, gateway.stats()
            finally:
                await client.close()

        status, payload, retries, stats = _with_gateway(config)(scenario)
        assert status == 200
        assert retries == 2
        assert stats["server"]["retried"] == 2
        direct = EmbeddingService().measure(2, 5)
        assert payload["region_size"] == direct.region_size

    def test_exhausted_retries_surface_the_last_503(self):
        config = GatewayConfig(port=0, chaos=ChaosConfig(seed=0, error_p=1.0))

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(
                host, port, retries=3, backoff_base_s=0.001
            )
            try:
                status, _ = await client.request("POST", "/measure", self.PAYLOAD)
                return status, client.retries_total, gateway.stats()
            finally:
                await client.close()

        status, retries, stats = _with_gateway(config)(scenario)
        assert status == 503
        assert retries == 3
        assert stats["server"]["retried"] == 3

    def test_client_reconnects_through_injected_drops(self):
        # seed 2 drops the first two deliveries; the client must reopen its
        # connection each time and land the third
        config = GatewayConfig(port=0, chaos=ChaosConfig(seed=2, drop_p=0.5))

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(
                host, port, retries=5, backoff_base_s=0.001
            )
            try:
                status, payload = await client.request(
                    "POST", "/measure", self.PAYLOAD
                )
                return status, payload, client.retries_total
            finally:
                await client.close()

        status, payload, retries = _with_gateway(config)(scenario)
        assert status == 200
        assert retries == 2
        assert payload["region_size"] == EmbeddingService().measure(2, 5).region_size

    def test_backoff_schedule_is_seeded_and_exponential(self):
        from repro.server.client import _backoff_s
        import random

        a = [_backoff_s(0.05, i, random.Random(0)) for i in range(3)]
        b = [_backoff_s(0.05, i, random.Random(0)) for i in range(3)]
        assert a == b  # seeded: replays exactly
        # base * 2^attempt * (1 + jitter in [0, 1))
        for attempt, value in enumerate(a):
            assert 0.05 * 2**attempt <= value < 0.05 * 2**attempt * 2


class TestGracefulDrain:
    def test_sigterm_drains_and_exits_zero_with_final_stats(self, tmp_path):
        src = Path(__file__).resolve().parents[2] / "src"
        env = {**os.environ, "PYTHONPATH": str(src)}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--max-wait-ms", "0.5"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no listening banner: {banner!r}"
            host, port = match.group(1), int(match.group(2))
            client = ServeClient(f"http://{host}:{port}", timeout=30.0)
            answer = client.measure(2, 5)
            assert answer["region_size"] == 32  # fault-free: every node reachable
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        # the drained process leaves one final /stats snapshot on stderr
        stats = json.loads(err.strip().splitlines()[-1])
        assert stats["server"]["requests"]["POST /measure"] == 1
        assert stats["shards"]["debruijn(2,5)"]["completed"] == 1

    def test_sigterm_with_no_traffic_still_exits_zero(self):
        src = Path(__file__).resolve().parents[2] / "src"
        env = {**os.environ, "PYTHONPATH": str(src)}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert "listening" in proc.stdout.readline()
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        stats = json.loads(err.strip().splitlines()[-1])
        assert stats["server"]["errors"] == 0
