"""Tests for the micro-batcher: coalescing, backpressure, metrics."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.engine.executor import KernelExecutor
from repro.exceptions import InvalidParameterError
from repro.server.batcher import MicroBatcher, QueueFullError, latency_percentiles


def _masks(executor, count, seed=0):
    topo = executor.topology
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        f = int(rng.integers(0, 5))
        codes = rng.integers(0, topo.num_nodes, size=f).astype(np.int64)
        out.append(topo.fault_unit_mask(codes))
    return out


class TestCoalescing:
    def test_concurrent_submits_share_launches_and_match_scalar(self):
        executor = KernelExecutor(2, 7)
        masks = _masks(executor, 40)
        expected = [executor.measure_mask_with_root(m) for m in masks]

        async def main():
            batcher = MicroBatcher(executor, max_wait_s=0.05)
            try:
                results = await asyncio.gather(*[batcher.submit(m) for m in masks])
                return results, batcher.stats()
            finally:
                await batcher.close()

        results, stats = asyncio.run(main())
        assert list(results) == expected
        assert stats["completed"] == len(masks)
        # 40 concurrent submits fit one 64-lane batch (modulo flusher races)
        assert stats["launches"] < len(masks)
        assert stats["batch_occupancy"] > 1.0
        assert stats["p50_s"] >= 0.0

    def test_max_batch_one_serves_every_request_alone(self):
        executor = KernelExecutor(2, 6)
        masks = _masks(executor, 10, seed=2)

        async def main():
            batcher = MicroBatcher(executor, max_batch=1)
            try:
                results = await asyncio.gather(*[batcher.submit(m) for m in masks])
                return results, batcher.stats()
            finally:
                await batcher.close()

        results, stats = asyncio.run(main())
        assert list(results) == [executor.measure_mask_with_root(m) for m in masks]
        assert stats["launches"] == len(masks)
        assert stats["batch_occupancy"] == 1.0


class TestBackpressure:
    def test_full_queue_rejects_immediately(self):
        executor = KernelExecutor(2, 5)
        release = threading.Event()

        class SlowExecutor:
            """Wraps the real executor; the first launch blocks until released."""

            topology_key = executor.topology_key

            def measure_masks_batch(self, masks):
                release.wait(timeout=10)
                return executor.measure_masks_batch(masks)

        mask = np.zeros(executor.topology.num_nodes, dtype=bool)

        async def main():
            batcher = MicroBatcher(SlowExecutor(), max_batch=1, max_queue=2)
            first = asyncio.ensure_future(batcher.submit(mask))
            await asyncio.sleep(0.05)  # flusher now blocked inside the launch
            second = asyncio.ensure_future(batcher.submit(mask))
            third = asyncio.ensure_future(batcher.submit(mask))
            await asyncio.sleep(0.05)  # both queued: the queue (maxsize 2) is full
            with pytest.raises(QueueFullError):
                await batcher.submit(mask)
            assert batcher.stats()["rejected"] == 1
            release.set()
            results = await asyncio.gather(first, second, third)
            await batcher.close()
            return results

        results = asyncio.run(main())
        assert all(r == executor.measure_mask_with_root(mask) for r in results)

    def test_close_fails_queued_waiters_instead_of_hanging_them(self):
        executor = KernelExecutor(2, 5)
        release = threading.Event()

        class SlowExecutor:
            topology_key = executor.topology_key

            def measure_masks_batch(self, masks):
                release.wait(timeout=10)
                return executor.measure_masks_batch(masks)

        mask = np.zeros(executor.topology.num_nodes, dtype=bool)

        async def main():
            batcher = MicroBatcher(SlowExecutor(), max_batch=1, max_queue=4)
            first = asyncio.ensure_future(batcher.submit(mask))
            await asyncio.sleep(0.05)  # flusher blocked inside the launch
            stuck = asyncio.ensure_future(batcher.submit(mask))
            await asyncio.sleep(0.05)  # now queued behind the blocked launch
            await batcher.close()
            release.set()
            # the queued waiter must resolve (with an error), never hang
            with pytest.raises(QueueFullError, match="closed"):
                await asyncio.wait_for(stuck, timeout=5)
            first.cancel()

        asyncio.run(main())

    def test_parameters_validated(self):
        executor = KernelExecutor(2, 4)
        with pytest.raises(InvalidParameterError):
            MicroBatcher(executor, max_batch=0)
        with pytest.raises(InvalidParameterError):
            MicroBatcher(executor, max_batch=65)
        with pytest.raises(InvalidParameterError):
            MicroBatcher(executor, max_wait_s=-1)
        with pytest.raises(InvalidParameterError):
            MicroBatcher(executor, max_queue=0)


class TestFailurePropagation:
    def test_executor_exception_reaches_every_waiter(self):
        class BrokenExecutor:
            topology_key = "broken"

            def measure_masks_batch(self, masks):
                raise RuntimeError("kernel exploded")

        mask = np.zeros(4, dtype=bool)

        async def main():
            batcher = MicroBatcher(BrokenExecutor(), max_wait_s=0.01)
            try:
                results = await asyncio.gather(
                    *[batcher.submit(mask) for _ in range(3)],
                    return_exceptions=True,
                )
                return results
            finally:
                await batcher.close()

        results = asyncio.run(main())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)


class TestLatencyPercentiles:
    def test_empty_and_singleton(self):
        assert latency_percentiles([]) == {"p50_s": 0.0, "p99_s": 0.0}
        assert latency_percentiles([0.5]) == {"p50_s": 0.5, "p99_s": 0.5}

    def test_orders_samples(self):
        stats = latency_percentiles([0.3, 0.1, 0.2, 0.4])
        assert stats["p50_s"] == 0.3
        assert stats["p99_s"] == 0.4

    def test_wait_bound_is_respected_roughly(self):
        # a lone request must not wait for a full batch: it flushes after
        # max_wait_s, not after 63 lane-mates show up
        executor = KernelExecutor(2, 5)
        mask = np.zeros(executor.topology.num_nodes, dtype=bool)

        async def main():
            batcher = MicroBatcher(executor, max_wait_s=0.01)
            try:
                start = time.perf_counter()
                await batcher.submit(mask)
                return time.perf_counter() - start
            finally:
                await batcher.close()

        assert asyncio.run(main()) < 5.0
