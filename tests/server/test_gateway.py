"""HTTP-level tests for the micro-batching gateway."""

import asyncio
import json

import pytest

from repro.engine.service import EmbeddingService
from repro.server.client import AsyncServeClient, fire_measure
from repro.server.gateway import BatchingGateway, GatewayConfig


def _with_gateway(config=None):
    """Run ``coro(gateway, host, port)`` against a started ephemeral gateway."""

    def runner(coro):
        async def main():
            gateway = BatchingGateway(config or GatewayConfig(port=0))
            await gateway.start()
            host, port = gateway.address
            try:
                return await coro(gateway, host, port)
            finally:
                await gateway.close()

        return asyncio.run(main())

    return runner


class TestRoutes:
    def test_healthz(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request("GET", "/healthz")
            finally:
                await client.close()

        status, payload = _with_gateway()(scenario)
        assert (status, payload) == (200, {"status": "ok"})

    def test_unknown_route_is_404(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request("GET", "/nope")
            finally:
                await client.close()

        status, payload = _with_gateway()(scenario)
        assert status == 404 and "error" in payload

    def test_malformed_json_is_400(self):
        async def scenario(gateway, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            body = b"{not json"
            writer.write(
                (
                    f"POST /measure HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode() + body
            )
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            return int(status_line.split()[1])

        assert _with_gateway()(scenario) == 400

    def test_chunked_transfer_encoding_is_refused_not_desynced(self):
        async def scenario(gateway, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /measure HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"5\r\n{\"d\":\r\n0\r\n\r\n"
            )
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            return int(status_line.split()[1])

        assert _with_gateway()(scenario) == 501

    def test_unknown_topology_is_400(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request(
                    "POST", "/measure", {"topology": "torus", "d": 2, "n": 5}
                )
            finally:
                await client.close()

        status, payload = _with_gateway()(scenario)
        assert status == 400 and "torus" in payload["error"]


class TestMeasure:
    def test_answers_match_the_scalar_service_path(self):
        payloads = [
            {"topology": "debruijn", "d": 2, "n": 6,
             "faults": [[0, 1, 0, 1, 1, 0]], "root": None},
            {"topology": "kautz", "d": 2, "n": 6, "faults": [], "root": None},
            {"topology": "hypercube", "d": 2, "n": 6,
             "faults": [[0] * 6, [1] * 6], "root": None},
        ]

        async def scenario(gateway, host, port):
            answers, _ = await fire_measure(host, port, payloads, concurrency=3)
            return answers

        answers = _with_gateway()(scenario)
        service = EmbeddingService()
        for payload, got in zip(payloads, answers):
            want = service.measure(
                payload["d"], payload["n"], faults=payload["faults"],
                topology=payload["topology"],
            ).as_dict()
            for transient in ("cached", "elapsed_s", "trace_id"):
                want.pop(transient, None), got.pop(transient, None)
            assert got == want

    def test_repeat_request_is_served_from_cache(self):
        payload = {"topology": "debruijn", "d": 2, "n": 6,
                   "faults": [[0, 0, 1, 1, 0, 1]], "root": None}

        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                _, cold = await client.request("POST", "/measure", payload)
                _, warm = await client.request("POST", "/measure", payload)
                return cold, warm, gateway.stats()
            finally:
                await client.close()

        cold, warm, stats = _with_gateway()(scenario)
        assert not cold["cached"] and warm["cached"]
        assert warm["region_size"] == cold["region_size"]
        assert stats["measure_cache"]["hits"] == 1

    def test_rotated_faults_share_one_cache_entry(self):
        # canonical fault-unit normalisation, exactly like the service
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                base = {"topology": "debruijn", "d": 2, "n": 5, "root": None}
                _, a = await client.request(
                    "POST", "/measure", {**base, "faults": [[0, 0, 0, 1, 1]]}
                )
                _, b = await client.request(
                    "POST", "/measure", {**base, "faults": [[0, 0, 1, 1, 0]]}
                )
                return a, b
            finally:
                await client.close()

        a, b = _with_gateway()(scenario)
        assert b["cached"] and a["fault_units"] == b["fault_units"]


class TestEmbed:
    def test_embed_matches_direct_service_call(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request(
                    "POST", "/embed",
                    {"d": 2, "n": 5, "faults": [[0, 0, 0, 1, 1]]},
                )
            finally:
                await client.close()

        status, payload = _with_gateway()(scenario)
        assert status == 200
        direct = EmbeddingService().embed(2, 5, faults=[(0, 0, 0, 1, 1)])
        assert payload["length"] == direct.length
        assert payload["cycle"] == [list(w) for w in direct.cycle]
        assert payload["meets_guarantee"] == direct.meets_guarantee

    def test_include_cycle_false_drops_the_payload(self):
        async def scenario(gateway, host, port):
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request(
                    "POST", "/embed",
                    {"d": 2, "n": 5, "faults": [], "include_cycle": False},
                )
            finally:
                await client.close()

        status, payload = _with_gateway()(scenario)
        assert status == 200
        assert "cycle" not in payload and payload["length"] == 32


class TestStats:
    def test_stats_shape_and_occupancy_under_concurrency(self):
        payloads = [
            {"topology": "debruijn", "d": 2, "n": 8,
             "faults": [[i % 2] * 7 + [1]], "root": None}
            for i in range(2)
        ] + [
            {"topology": "debruijn", "d": 2, "n": 8,
             "faults": [[int(b) for b in format(i, "08b")]], "root": None}
            for i in range(40)
        ]

        async def scenario(gateway, host, port):
            await fire_measure(host, port, payloads, concurrency=16)
            client = await AsyncServeClient.open(host, port)
            try:
                return await client.request("GET", "/stats")
            finally:
                await client.close()

        status, stats = _with_gateway()(scenario)
        assert status == 200
        server = stats["server"]
        assert server["requests"]["POST /measure"] == len(payloads)
        assert server["batch_occupancy"] > 1.0
        assert "debruijn(2,8)" in stats["shards"]
        shard = stats["shards"]["debruijn(2,8)"]
        assert shard["completed"] == shard["lanes"] >= 1
        # the engine cache audit rides along, as the service exposes it
        assert "process_caches" in stats["service"]
        json.dumps(stats)  # everything must be JSON-serialisable

    def test_queue_limit_maps_to_503(self):
        config = GatewayConfig(port=0, queue_limit=1, max_batch=1, max_wait_ms=0.0)
        payloads = [
            {"topology": "debruijn", "d": 2, "n": 10,
             "faults": [[int(b) for b in format(i, "010b")]], "root": None}
            for i in range(64)
        ]

        async def scenario(gateway, host, port):
            async def one(payload):
                client = await AsyncServeClient.open(host, port)
                try:
                    status, _ = await client.request("POST", "/measure", payload)
                    return status
                finally:
                    await client.close()

            return await asyncio.gather(*[one(p) for p in payloads])

        statuses = _with_gateway(config)(scenario)
        assert set(statuses) <= {200, 503}
        assert 200 in statuses
        # with a queue of 1 and 64 simultaneous requests, some must shed
        assert 503 in statuses


@pytest.mark.parametrize("include_root", [False, True])
def test_explicit_root_shards_separately(include_root):
    payload = {"topology": "debruijn", "d": 2, "n": 5,
               "faults": [], "root": [1, 0, 1, 0, 1] if include_root else None}

    async def scenario(gateway, host, port):
        client = await AsyncServeClient.open(host, port)
        try:
            status, answer = await client.request("POST", "/measure", payload)
            return status, answer, gateway.stats()["shards"]
        finally:
            await client.close()

    status, answer, shards = _with_gateway()(scenario)
    assert status == 200
    expected_root = [1, 0, 1, 0, 1] if include_root else [0, 0, 0, 0, 1]
    assert answer["root"] == expected_root
    name = "debruijn(2,5)" + ("@(1, 0, 1, 0, 1)" if include_root else "")
    assert name in shards
