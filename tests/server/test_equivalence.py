"""Property test: micro-batched serving ≡ sequential scalar execution.

For every registered topology, any interleaving of concurrent
embed/measure requests through the gateway must return byte-identical
answers (JSON payloads modulo the ``cached``/``elapsed_s`` bookkeeping) to
running the same queries one at a time through the scalar
:class:`~repro.engine.service.EmbeddingService` path.  Hypothesis drives
the fault sets, the duplicate structure, the arrival order and the arrival
jitter — which together determine how requests pack into kernel lanes,
which requests hit the answer cache, and how batches split.
"""

import asyncio
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.service import EmbeddingService
from repro.server.gateway import BatchingGateway, GatewayConfig
from repro.topology import available_topologies, get_topology

_D, _N = 2, 5

_TRANSIENT = ("cached", "elapsed_s", "trace_id")


def _canonical(payload: dict) -> str:
    return json.dumps(
        {k: v for k, v in payload.items() if k not in _TRANSIENT}, sort_keys=True
    )


def _requests_strategy(topology: str):
    """Request specs with faults drawn as valid node *codes* per backend.

    Words are decoded from codes at runtime (Kautz forbids adjacent repeats,
    so raw digit lists would generate non-nodes); embed queries always run
    on ``B(_D, _N)`` and use that backend's coding.
    """
    measure_nodes = get_topology(topology, _D, _N).num_nodes
    embed_nodes = get_topology("debruijn", _D, _N).num_nodes
    measure = st.fixed_dictionaries({
        "kind": st.just("measure"),
        "fault_codes": st.lists(st.integers(0, measure_nodes - 1), max_size=4),
    })
    embed = st.fixed_dictionaries({
        "kind": st.just("embed"),
        "fault_codes": st.lists(st.integers(0, embed_nodes - 1), max_size=3),
    })
    return st.lists(st.one_of(measure, embed), min_size=1, max_size=16)


@pytest.mark.parametrize("topology", sorted(available_topologies()))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_any_interleaving_matches_sequential_scalar(topology, data):
    requests = data.draw(_requests_strategy(topology))
    order = data.draw(st.permutations(range(len(requests))))
    jitter = data.draw(
        st.lists(
            st.sampled_from([0.0, 0.0002, 0.001]),
            min_size=len(requests),
            max_size=len(requests),
        )
    )
    topo = get_topology(topology, _D, _N)
    debruijn = get_topology("debruijn", _D, _N)
    for request in requests:
        backend = topo if request["kind"] == "measure" else debruijn
        request["faults"] = [
            list(backend.decode(code)) for code in request["fault_codes"]
        ]

    # ground truth: the same queries, one at a time, scalar path, fresh caches
    service = EmbeddingService()
    expected = []
    for request in requests:
        if request["kind"] == "measure":
            expected.append(_canonical(service.measure(
                _D, _N, faults=request["faults"], topology=topology
            ).as_dict()))
        else:
            expected.append(_canonical(
                service.embed(_D, _N, faults=request["faults"]).as_dict()
            ))

    async def main():
        gateway = BatchingGateway(GatewayConfig(port=0, max_wait_ms=1.0))
        answers: list = [None] * len(requests)

        async def issue(index: int, delay: float):
            await asyncio.sleep(delay)
            request = requests[index]
            if request["kind"] == "measure":
                answers[index] = await gateway._measure({
                    "topology": topology, "d": _D, "n": _N,
                    "faults": request["faults"], "root": None,
                })
            else:
                answers[index] = await gateway._embed({
                    "d": _D, "n": _N, "faults": request["faults"],
                })
        try:
            await asyncio.gather(
                *[issue(i, jitter[pos]) for pos, i in enumerate(order)]
            )
        finally:
            for batcher in gateway._batchers.values():
                await batcher.close()
        return answers

    answers = asyncio.run(main())
    for index, (answer, want) in enumerate(zip(answers, expected)):
        assert _canonical(answer) == want, (
            f"request {index} ({requests[index]['kind']}) diverged on {topology}"
        )
