"""Tests for residual-graph analysis and the line-graph correspondence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.graphs import (
    DeBruijnGraph,
    ResidualGraph,
    bfs_levels,
    circuit_to_cycle,
    component_of,
    component_sizes,
    component_stats_from_root,
    cycle_to_circuit,
    diameter,
    eccentricity,
    is_balanced_after_removal,
    is_circuit,
    lower_edge_to_node,
    node_to_lower_edge,
    residual_after_node_faults,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.words import word_to_int


class TestResidualConstruction:
    def test_no_faults(self):
        r = residual_after_node_faults(2, 4, [])
        assert r.num_alive == 16
        assert r.num_removed == 0

    def test_whole_necklace_removed(self):
        # fault 020 in B(3,3) removes the necklace {020, 200, 002}
        r = residual_after_node_faults(3, 3, [(0, 2, 0)])
        assert r.num_removed == 3
        assert not r.is_alive(word_to_int((2, 0, 0), 3))
        assert r.is_alive(word_to_int((0, 0, 0), 3))

    def test_example_2_1_removal(self):
        r = residual_after_node_faults(3, 3, [(0, 2, 0), (1, 1, 2)])
        assert r.num_alive == 21

    def test_int_encoded_faults_accepted(self):
        r1 = residual_after_node_faults(3, 3, [word_to_int((0, 2, 0), 3)])
        r2 = residual_after_node_faults(3, 3, [(0, 2, 0)])
        assert np.array_equal(r1.removed_mask, r2.removed_mask)

    def test_only_faulty_nodes_removed_when_flag_off(self):
        r = residual_after_node_faults(3, 3, [(0, 2, 0)], remove_whole_necklaces=False)
        assert r.num_removed == 1

    def test_alive_words_roundtrip(self):
        r = residual_after_node_faults(2, 3, [(0, 1, 1)])
        words = r.alive_words()
        assert len(words) == r.num_alive
        assert (0, 1, 1) not in words


class TestBFS:
    def test_bfs_from_root_in_full_graph(self):
        r = residual_after_node_faults(2, 4, [])
        dist = bfs_levels(r, 0, direction="out")
        assert dist[0] == 0
        assert dist.max() <= 4  # diameter of B(2,4) is n = 4
        assert (dist >= 0).all()

    def test_bfs_direction_in(self):
        r = residual_after_node_faults(2, 3, [])
        out_d = bfs_levels(r, 1, direction="out")
        in_d = bfs_levels(r, 1, direction="in")
        assert out_d[1] == 0 and in_d[1] == 0
        assert (in_d >= 0).all()

    def test_bfs_invalid_direction(self):
        r = residual_after_node_faults(2, 3, [])
        with pytest.raises(InvalidParameterError):
            bfs_levels(r, 0, direction="sideways")

    def test_bfs_removed_root_rejected(self):
        r = residual_after_node_faults(2, 3, [(0, 0, 0)])
        with pytest.raises(InvalidParameterError):
            bfs_levels(r, 0)

    def test_distances_match_networkx(self):
        import networkx as nx

        d, n = 2, 5
        faults = [(0, 1, 0, 1, 1), (1, 1, 0, 0, 0)]
        r = residual_after_node_faults(d, n, faults)
        g = DeBruijnGraph(d, n)
        from repro.words import faulty_necklaces

        removed = set()
        for nk in faulty_necklaces(faults, d):
            removed |= nk.node_set
        sub = g.subgraph_without(removed)
        root_word = (0, 0, 0, 0, 1)
        root = word_to_int(root_word, d)
        dist = bfs_levels(r, root, direction="out")
        nx_dist = nx.single_source_shortest_path_length(sub, root_word)
        for word, dd in nx_dist.items():
            assert dist[word_to_int(word, d)] == dd
        # nodes unreachable in networkx must be -1 or removed
        for value in range(2**n):
            if dist[value] == -1 and not r.removed_mask[value]:
                from repro.words import int_to_word

                assert int_to_word(value, d, n) not in nx_dist


class TestComponents:
    def test_full_graph_single_component(self):
        r = residual_after_node_faults(3, 3, [])
        comps = weakly_connected_components(r)
        assert len(comps) == 1
        assert len(comps[0]) == 27

    def test_component_sizes_sorted(self):
        r = residual_after_node_faults(2, 6, [(0, 1, 0, 1, 0, 1)])
        sizes = component_sizes(r)
        assert sizes == sorted(sizes, reverse=True)
        assert sum(sizes) == r.num_alive

    def test_weak_equals_strong_after_necklace_removal(self):
        # removing whole necklaces keeps the graph balanced, so weak and
        # strong components coincide (Section 2.5 line-graph argument)
        for d, n, faults in [
            (2, 5, [(0, 0, 1, 1, 1)]),
            (3, 3, [(0, 2, 0), (1, 1, 2)]),
            (2, 6, [(0, 0, 0, 0, 0, 1), (0, 1, 1, 1, 1, 1)]),
        ]:
            r = residual_after_node_faults(d, n, faults)
            weak = sorted(len(c) for c in weakly_connected_components(r))
            strong = sorted(len(c) for c in strongly_connected_components(r))
            assert weak == strong

    def test_component_of_root(self):
        r = residual_after_node_faults(3, 3, [(0, 2, 0), (1, 1, 2)])
        root = word_to_int((0, 0, 1), 3)
        comp = component_of(r, root)
        assert len(comp) == 21  # Example 2.1: B* has 21 nodes

    def test_single_fault_binary_isolates_at_most_one_node(self):
        # Proposition 2.3's surrounding discussion
        for fault in [(0, 0, 1, 0, 1), (1, 0, 1, 0, 1), (0, 1, 1, 0, 1)]:
            r = residual_after_node_faults(2, 5, [fault])
            sizes = component_sizes(r)
            assert sizes[0] >= r.num_alive - 1


class TestEccentricityDiameter:
    def test_eccentricity_of_full_graph_root(self):
        r = residual_after_node_faults(2, 5, [])
        ecc = eccentricity(r, word_to_int((0, 0, 0, 0, 1), 2))
        assert ecc == 5  # B(2,n) has diameter n

    def test_diameter_full_graph(self):
        for d, n in [(2, 4), (3, 2)]:
            r = residual_after_node_faults(d, n, [])
            assert diameter(r) == n

    def test_prop_2_2_diameter_bound(self):
        # with f <= d-2 faults, the diameter of B* is at most 2n
        d, n = 4, 3
        r = residual_after_node_faults(d, n, [(0, 1, 2), (3, 3, 1)])
        assert diameter(r) <= 2 * n

    def test_component_stats_consistency(self):
        r = residual_after_node_faults(3, 3, [(0, 2, 0), (1, 1, 2)])
        root = word_to_int((0, 0, 1), 3)
        stats = component_stats_from_root(r, root)
        assert stats.component_size == 21
        assert stats.root_eccentricity <= 2 * 3
        assert stats.root == root

    def test_empty_residual_diameter_raises(self):
        mask = np.ones(8, dtype=bool)
        r = ResidualGraph(2, 3, mask)
        with pytest.raises(InvalidParameterError):
            diameter(r)


class TestLineGraph:
    def test_node_edge_correspondence(self):
        assert node_to_lower_edge((0, 1, 2), 3) == ((0, 1), (1, 2))
        assert lower_edge_to_node((0, 1), (1, 2), 3) == (0, 1, 2)

    def test_node_to_lower_edge_requires_length_two(self):
        with pytest.raises(InvalidParameterError):
            node_to_lower_edge((1,), 2)

    def test_lower_edge_to_node_rejects_non_edge(self):
        with pytest.raises(InvalidParameterError):
            lower_edge_to_node((0, 1), (0, 1), 2)

    def test_paper_cycle_circuit_example(self):
        # cycle (012,122,221,212,120,201) in B(3,3) <-> circuit (01,12,22,21,12,20)
        cycle = [(0, 1, 2), (1, 2, 2), (2, 2, 1), (2, 1, 2), (1, 2, 0), (2, 0, 1)]
        circuit = cycle_to_circuit(cycle, 3)
        assert circuit == [(0, 1), (1, 2), (2, 2), (2, 1), (1, 2), (2, 0)]
        assert is_circuit(circuit, 3)
        assert circuit_to_cycle(circuit, 3) == cycle

    def test_roundtrip_on_hamiltonian_cycle(self):
        g = DeBruijnGraph(2, 3)
        seq = [0, 0, 0, 1, 0, 1, 1, 1]
        hc = [tuple(seq[(i + j) % 8] for j in range(3)) for i in range(8)]
        circuit = cycle_to_circuit(hc, 2)
        assert is_circuit(circuit, 2)
        assert circuit_to_cycle(circuit, 2) == hc
        assert g.is_hamiltonian_cycle(hc)

    def test_is_circuit_rejects_repeated_edge(self):
        # walking 00 -> 00 -> 00 repeats the loop edge
        assert not is_circuit([(0, 0), (0, 0)], 2)

    def test_balanced_after_removal(self):
        cycle = [(0, 1, 2), (1, 2, 2), (2, 2, 1), (2, 1, 2), (1, 2, 0), (2, 0, 1)]
        assert is_balanced_after_removal(3, 3, cycle)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 3), st.integers(3, 5), st.data())
def test_random_fault_component_stats_are_consistent(d, n, data):
    num_faults = data.draw(st.integers(0, 3))
    faults = [
        tuple(data.draw(st.integers(0, d - 1)) for _ in range(n)) for _ in range(num_faults)
    ]
    r = residual_after_node_faults(d, n, faults)
    root_candidates = r.alive_nodes()
    if len(root_candidates) == 0:
        return
    root = int(root_candidates[0])
    stats = component_stats_from_root(r, root)
    comp = component_of(r, root)
    assert stats.component_size == len(comp)
    assert 0 <= stats.root_eccentricity < r.num_total
    assert sum(component_sizes(r)) == r.num_alive


def test_residual_rejects_wrong_length_faults():
    """A fault word of the wrong length must not silently map to another node."""
    import pytest
    from repro.exceptions import InvalidParameterError
    from repro.graphs import residual_after_node_faults

    with pytest.raises(InvalidParameterError):
        residual_after_node_faults(2, 4, [(0, 1)])
    with pytest.raises(InvalidParameterError):
        residual_after_node_faults(2, 4, [(0, 1, 0, 1, 0)], remove_whole_necklaces=False)
