"""Unit tests for the bit-parallel multi-trial BFS kernel (graphs/msbfs.py).

The kernel's contract: lane ``t`` of a batched sweep produces exactly the
``(component size, root eccentricity)`` that the scalar path — one
:func:`repro.graphs.components.bfs_levels` out-sweep — produces for trial
``t``'s removed mask alone.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.graphs.components import ResidualGraph, bfs_levels
from repro.graphs.msbfs import (
    WORD_WIDTH,
    batched_root_stats,
    lane_popcounts,
    lane_removed_mask,
    pack_fault_lanes,
)
from repro.words.codec import get_codec


def _scalar_stats(d, n, removed, root):
    dist = bfs_levels(ResidualGraph(d, n, removed), root, direction="out")
    return int((dist >= 0).sum()), int(dist.max())


def _random_fault_batch(codec, batch, f, rng):
    return rng.integers(0, codec.size, size=(batch, f))


class TestPackFaultLanes:
    @pytest.mark.parametrize("d,n", [(2, 5), (3, 3), (4, 4)])
    def test_lanes_match_faulty_necklace_mask(self, d, n):
        codec = get_codec(d, n)
        rng = np.random.default_rng(0)
        codes = _random_fault_batch(codec, 17, 6, rng)
        lanes = pack_fault_lanes(codec, codes)
        for t in range(17):
            expected = codec.faulty_necklace_mask(codes[t])
            assert np.array_equal(lane_removed_mask(lanes, t), expected)

    def test_zero_faults_pack_to_zero_lanes(self):
        codec = get_codec(2, 4)
        lanes = pack_fault_lanes(codec, np.empty((5, 0), dtype=np.int64))
        assert not lanes.any()

    def test_rejects_bad_shapes_and_codes(self):
        codec = get_codec(2, 4)
        with pytest.raises(InvalidParameterError):
            pack_fault_lanes(codec, np.zeros(3, dtype=np.int64))  # 1-D
        with pytest.raises(InvalidParameterError):
            pack_fault_lanes(codec, np.zeros((65, 2), dtype=np.int64))  # > 64 lanes
        with pytest.raises(InvalidParameterError):
            pack_fault_lanes(codec, np.array([[16]]))  # out of range for B(2,4)


class TestLanePopcounts:
    def test_counts_match_manual_bits(self):
        rng = np.random.default_rng(3)
        lanes = rng.integers(0, 2**63, size=40).astype(np.uint64)
        counts = lane_popcounts(lanes, 64)
        for t in range(64):
            expected = int(((lanes >> np.uint64(t)) & np.uint64(1)).sum())
            assert counts[t] == expected


class TestBatchedRootStats:
    @pytest.mark.parametrize("d,n,f", [(2, 6, 4), (2, 6, 20), (3, 3, 2), (4, 4, 10)])
    def test_matches_scalar_bfs_per_lane(self, d, n, f):
        codec = get_codec(d, n)
        rng = np.random.default_rng(1)
        for batch in (1, 3, WORD_WIDTH):
            codes = _random_fault_batch(codec, batch, f, rng)
            lanes = pack_fault_lanes(codec, codes)
            root = 1  # the paper's R = 0...01
            stats = batched_root_stats(codec, lanes, root, batch)
            for t in range(batch):
                removed = lane_removed_mask(lanes, t)
                if removed[root]:
                    assert (stats.root_dead >> t) & 1
                    continue
                assert not (stats.root_dead >> t) & 1
                size, ecc = _scalar_stats(d, n, removed, root)
                assert (int(stats.sizes[t]), int(stats.eccs[t])) == (size, ecc)

    def test_per_lane_roots(self):
        # the root-fallback form: one shared mask, a different root per lane
        d, n = 2, 6
        codec = get_codec(d, n)
        removed = codec.faulty_necklace_mask(np.array([3, 17, 40]))
        alive = np.flatnonzero(~removed)[:10]
        lanes = removed.astype(np.uint64) * np.uint64(2 ** len(alive) - 1)
        stats = batched_root_stats(codec, lanes, alive, len(alive))
        assert stats.root_dead == 0
        for i, root in enumerate(alive.tolist()):
            assert (int(stats.sizes[i]), int(stats.eccs[i])) == _scalar_stats(
                d, n, removed, root
            )

    def test_no_faults_full_graph(self):
        codec = get_codec(2, 5)
        lanes = np.zeros(codec.size, dtype=np.uint64)
        stats = batched_root_stats(codec, lanes, 1, 8)
        assert stats.root_dead == 0
        assert (stats.sizes == 32).all()
        assert (stats.eccs == 5).all()  # B(2,n) has diameter n

    def test_all_roots_dead_short_circuits(self):
        codec = get_codec(2, 4)
        lanes = np.full(codec.size, np.uint64(2**3 - 1), dtype=np.uint64)
        stats = batched_root_stats(codec, lanes, 1, 3)
        assert stats.root_dead == 2**3 - 1
        assert stats.dead_trials() == [0, 1, 2]
        assert (stats.sizes == 0).all() and (stats.eccs == 0).all()

    def test_validation(self):
        codec = get_codec(2, 4)
        lanes = np.zeros(codec.size, dtype=np.uint64)
        with pytest.raises(InvalidParameterError):
            batched_root_stats(codec, lanes, 1, 0)
        with pytest.raises(InvalidParameterError):
            batched_root_stats(codec, lanes, 1, WORD_WIDTH + 1)
        with pytest.raises(InvalidParameterError):
            batched_root_stats(codec, lanes, codec.size, 2)
        with pytest.raises(InvalidParameterError):
            batched_root_stats(codec, np.zeros(4, dtype=np.uint64), 1, 2)
        with pytest.raises(InvalidParameterError):
            batched_root_stats(codec, lanes.astype(np.int64), 1, 2)
