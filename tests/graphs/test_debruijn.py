"""Unit and property tests for repro.graphs.debruijn."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.graphs import (
    DeBruijnGraph,
    edge_label,
    is_debruijn_edge,
    predecessor_matrix,
    predecessors,
    successor_matrix,
    successors,
)
from repro.words import int_to_word, word_to_int

small_dn = st.tuples(st.integers(2, 4), st.integers(1, 5))


class TestModuleFunctions:
    def test_successors_of_node(self):
        assert successors((1, 0, 1), 2) == [(0, 1, 0), (0, 1, 1)]

    def test_predecessors_of_node(self):
        assert predecessors((1, 0, 1), 2) == [(0, 1, 0), (1, 1, 0)]

    def test_edge_detection(self):
        assert is_debruijn_edge((0, 1, 2), (1, 2, 0), 3)
        assert not is_debruijn_edge((0, 1, 2), (2, 1, 0), 3)

    def test_edge_label(self):
        assert edge_label((0, 1, 2), (1, 2, 0), 3) == (0, 1, 2, 0)
        with pytest.raises(InvalidParameterError):
            edge_label((0, 1, 2), (2, 1, 0), 3)

    @given(small_dn, st.data())
    @settings(max_examples=30, deadline=None)
    def test_successor_predecessor_duality(self, dn, data):
        d, n = dn
        value = data.draw(st.integers(0, d**n - 1))
        w = int_to_word(value, d, n)
        for s in successors(w, d):
            assert w in predecessors(s, d)
        for p in predecessors(w, d):
            assert w in successors(p, d)


class TestGraphBasics:
    def test_counts_b23(self):
        g = DeBruijnGraph(2, 3)
        assert g.num_nodes == 8
        assert g.num_edges == 16
        assert g.num_loops == 2

    def test_counts_b46(self):
        # the 4096-node example of Chapter 2's introduction: the paper counts
        # 16384 edges for B(4,6), i.e. d**(n+1) directed edges
        g = DeBruijnGraph(4, 6)
        assert g.num_nodes == 4096
        assert g.num_edges == 16384

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            DeBruijnGraph(1, 3)
        with pytest.raises(InvalidParameterError):
            DeBruijnGraph(2, 0)

    def test_equality_and_hash(self):
        assert DeBruijnGraph(2, 3) == DeBruijnGraph(2, 3)
        assert DeBruijnGraph(2, 3) != DeBruijnGraph(2, 4)
        assert hash(DeBruijnGraph(3, 2)) == hash(DeBruijnGraph(3, 2))

    def test_contains(self):
        g = DeBruijnGraph(3, 2)
        assert (2, 1) in g
        assert (3, 1) not in g
        assert (1, 1, 1) not in g
        assert "11" not in g

    def test_node_int_roundtrip(self):
        g = DeBruijnGraph(3, 4)
        assert g.node_from_int(42) == (1, 1, 2, 0)
        assert g.node_to_int((1, 1, 2, 0)) == 42

    def test_nodes_enumeration(self):
        g = DeBruijnGraph(2, 3)
        nodes = list(g.nodes())
        assert len(nodes) == 8
        assert nodes[0] == (0, 0, 0)
        assert nodes[-1] == (1, 1, 1)

    def test_wrong_length_node_rejected(self):
        g = DeBruijnGraph(2, 3)
        with pytest.raises(InvalidParameterError):
            g.successors((0, 1))
        with pytest.raises(InvalidParameterError):
            g.in_degree((0, 1, 0, 1))


class TestEdges:
    def test_figure_1_1a_edges(self):
        # a few edges read off Figure 1.1(a): B(2,3)
        g = DeBruijnGraph(2, 3)
        assert g.has_edge((0, 0, 0), (0, 0, 1))
        assert g.has_edge((0, 0, 1), (0, 1, 0))
        assert g.has_edge((1, 0, 1), (0, 1, 1))
        assert g.has_edge((1, 1, 1), (1, 1, 1))  # loop
        assert not g.has_edge((0, 0, 1), (1, 0, 0))

    def test_edge_count_matches_enumeration(self):
        g = DeBruijnGraph(3, 2)
        assert sum(1 for _ in g.edges()) == g.num_edges

    def test_every_node_has_d_successors_and_predecessors(self):
        g = DeBruijnGraph(3, 3)
        for w in g.nodes():
            assert len(g.successors(w)) == 3
            assert len(g.predecessors(w)) == 3
            assert g.in_degree(w) == 3
            assert g.out_degree(w) == 3

    def test_loops_only_at_constant_words(self):
        g = DeBruijnGraph(3, 2)
        loops = [w for w in g.nodes() if g.has_edge(w, w)]
        assert loops == [(0, 0), (1, 1), (2, 2)]
        for w in g.nodes():
            assert g.has_loop(w) == (w in loops)

    def test_edge_labels_roundtrip(self):
        g = DeBruijnGraph(2, 3)
        labels = list(g.edge_labels())
        assert len(labels) == g.num_edges
        for lab in labels:
            src, dst = g.edge_from_label(lab)
            assert g.has_edge(src, dst)

    def test_edge_from_label_wrong_length(self):
        g = DeBruijnGraph(2, 3)
        with pytest.raises(InvalidParameterError):
            g.edge_from_label((0, 1, 0))


class TestMatrices:
    @given(small_dn)
    @settings(max_examples=20, deadline=None)
    def test_successor_matrix_matches_tuples(self, dn):
        d, n = dn
        g = DeBruijnGraph(d, n)
        S = successor_matrix(d, n)
        assert S.shape == (d**n, d)
        for value in range(min(d**n, 64)):
            w = int_to_word(value, d, n)
            expected = sorted(word_to_int(s, d) for s in g.successors(w))
            assert sorted(int(x) for x in S[value]) == expected

    @given(small_dn)
    @settings(max_examples=20, deadline=None)
    def test_predecessor_matrix_matches_tuples(self, dn):
        d, n = dn
        g = DeBruijnGraph(d, n)
        P = predecessor_matrix(d, n)
        for value in range(min(d**n, 64)):
            w = int_to_word(value, d, n)
            expected = sorted(word_to_int(p, d) for p in g.predecessors(w))
            assert sorted(int(x) for x in P[value]) == expected

    def test_matrix_duality(self):
        d, n = 3, 3
        S = successor_matrix(d, n)
        P = predecessor_matrix(d, n)
        for x in range(d**n):
            for y in S[x]:
                assert x in P[int(y)]

    def test_matrix_dtype(self):
        assert successor_matrix(2, 5).dtype == np.int64


class TestCycleVerification:
    def test_known_cycle(self):
        g = DeBruijnGraph(3, 3)
        cycle = [(0, 1, 2), (1, 2, 2), (2, 2, 1), (2, 1, 2), (1, 2, 0), (2, 0, 1)]
        assert g.is_cycle(cycle)

    def test_loop_is_single_node_cycle(self):
        g = DeBruijnGraph(2, 3)
        assert g.is_cycle([(1, 1, 1)])
        assert not g.is_cycle([(0, 1, 1)])

    def test_non_cycle_rejected(self):
        g = DeBruijnGraph(2, 3)
        assert not g.is_cycle([(0, 0, 1), (0, 1, 0), (0, 0, 1)])  # repeat
        assert not g.is_cycle([(0, 0, 1), (1, 1, 1)])  # not an edge
        assert not g.is_cycle([])

    def test_path_detection(self):
        g = DeBruijnGraph(2, 3)
        assert g.is_path([(0, 0, 1), (0, 1, 0), (1, 0, 1)])
        assert not g.is_path([(0, 0, 1), (1, 0, 1)])

    def test_hamiltonian_cycle_detection(self):
        # standard binary De Bruijn sequence 00010111 for B(2,3)
        g = DeBruijnGraph(2, 3)
        seq = [0, 0, 0, 1, 0, 1, 1, 1]
        cycle = [tuple(seq[(i + j) % 8] for j in range(3)) for i in range(8)]
        assert g.is_hamiltonian_cycle(cycle)
        assert not g.is_hamiltonian_cycle(cycle[:-1])


class TestConversions:
    def test_to_networkx_counts(self):
        g = DeBruijnGraph(2, 3)
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 8
        assert nxg.number_of_edges() == 16
        no_loops = g.to_networkx(remove_loops=True)
        assert no_loops.number_of_edges() == 14

    def test_subgraph_without_nodes(self):
        g = DeBruijnGraph(3, 3)
        removed = [(0, 2, 0), (2, 0, 0), (0, 0, 2)]
        sub = g.subgraph_without(removed)
        assert sub.number_of_nodes() == 24
        assert all(w not in sub for w in removed)
        for src, dst in sub.edges():
            assert g.has_edge(src, dst)
