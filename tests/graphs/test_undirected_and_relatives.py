"""Tests for UB(d,n), Kautz, shuffle-exchange and hypercube graphs."""

import networkx as nx
import pytest

from repro.exceptions import InvalidParameterError
from repro.graphs import (
    HypercubeGraph,
    KautzGraph,
    ShuffleExchangeGraph,
    UndirectedDeBruijnGraph,
    degree_census,
    fault_free_cycle_bound,
    gray_code_cycle,
    longest_fault_free_cycle_bruteforce,
)


class TestUndirectedDeBruijn:
    def test_figure_1_2_ub23(self):
        g = UndirectedDeBruijnGraph(2, 3)
        assert g.num_nodes == 8
        # 000-100, 000-001, 001-010, 001-011, 010-100, 010-101, 011-101,
        # 011-111, 100-110, 101-110, 110-111, 001-100(?) ... verified via census
        census = g.degree_census()
        assert census == degree_census(2, 3)

    def test_degree_census_formula_matches_measurement(self):
        for d, n in [(2, 3), (2, 4), (3, 2), (3, 3), (4, 2)]:
            g = UndirectedDeBruijnGraph(d, n)
            assert g.degree_census() == degree_census(d, n)

    def test_census_class_sizes_from_paper(self):
        # d nodes of degree 2d-2, d(d-1) of degree 2d-1, d^n - d^2 of degree 2d
        census = degree_census(3, 3)
        assert census[4] == 3
        assert census[5] == 6
        assert census[6] == 27 - 9

    def test_degree_of_constant_and_alternating_words(self):
        g = UndirectedDeBruijnGraph(3, 3)
        assert g.degree((0, 0, 0)) == 4
        assert g.degree((0, 1, 0)) == 5
        assert g.degree((0, 1, 2)) == 6

    def test_no_loops(self):
        g = UndirectedDeBruijnGraph(2, 4)
        nxg = g.to_networkx()
        assert nx.number_of_selfloops(nxg) == 0

    def test_connected(self):
        for d, n in [(2, 3), (2, 5), (3, 3)]:
            assert UndirectedDeBruijnGraph(d, n).is_connected()

    def test_edges_subset_of_directed(self):
        g = UndirectedDeBruijnGraph(2, 3)
        for a, b in g.edges():
            assert g.directed.has_edge(a, b) or g.directed.has_edge(b, a)

    def test_neighbors_and_has_edge(self):
        g = UndirectedDeBruijnGraph(2, 3)
        assert (0, 0, 1) in g.neighbors((0, 0, 0))
        assert g.has_edge((0, 0, 0), (1, 0, 0))
        assert not g.has_edge((0, 0, 0), (1, 1, 1))

    def test_degree_of_unknown_node_raises(self):
        g = UndirectedDeBruijnGraph(2, 3)
        with pytest.raises(InvalidParameterError):
            g.degree((0, 1))

    def test_n_equals_one_is_complete_graph(self):
        g = UndirectedDeBruijnGraph(3, 1)
        assert g.num_edges == 3
        assert g.degree_census() == {2: 3}
        assert degree_census(3, 1) == {2: 3}


class TestKautz:
    def test_counts(self):
        k = KautzGraph(2, 3)
        assert k.num_nodes == 12
        assert k.num_edges == 24
        assert len(list(k.nodes())) == 12
        assert sum(1 for _ in k.edges()) == 24

    def test_no_loops_and_regular(self):
        k = KautzGraph(3, 2)
        for w in k.nodes():
            succ = k.successors(w)
            assert len(succ) == 3
            assert w not in succ
            assert len(k.predecessors(w)) == 3

    def test_node_validity(self):
        k = KautzGraph(2, 3)
        assert k.is_node((0, 1, 0))
        assert not k.is_node((0, 0, 1))
        assert not k.is_node((0, 1))
        with pytest.raises(InvalidParameterError):
            k.successors((0, 0, 1))

    def test_edge_rule(self):
        k = KautzGraph(2, 3)
        assert k.has_edge((0, 1, 2), (1, 2, 0))
        assert not k.has_edge((0, 1, 2), (1, 2, 2))

    def test_is_cycle(self):
        k = KautzGraph(2, 2)
        assert k.is_cycle([(0, 1), (1, 0)])
        assert not k.is_cycle([(0, 1), (1, 2)])

    def test_successor_predecessor_duality(self):
        k = KautzGraph(2, 3)
        for w in k.nodes():
            for s in k.successors(w):
                assert w in k.predecessors(s)

    def test_to_networkx(self):
        k = KautzGraph(2, 2)
        g = k.to_networkx()
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 12


class TestShuffleExchange:
    def test_counts(self):
        se = ShuffleExchangeGraph(2, 3)
        assert se.num_nodes == 8

    def test_shuffle_is_rotation(self):
        se = ShuffleExchangeGraph(2, 4)
        assert se.shuffle_neighbor((0, 0, 0, 1)) == (0, 0, 1, 0)

    def test_exchange_flips_last_digit(self):
        se = ShuffleExchangeGraph(2, 3)
        assert se.exchange_neighbors((0, 1, 0)) == [(0, 1, 1)]
        se3 = ShuffleExchangeGraph(3, 2)
        assert se3.exchange_neighbors((0, 1)) == [(0, 0), (0, 2)]

    def test_neighbors_exclude_self(self):
        se = ShuffleExchangeGraph(2, 3)
        assert (0, 0, 0) not in se.neighbors((0, 0, 0))

    def test_binary_graph_is_connected(self):
        se = ShuffleExchangeGraph(2, 4)
        assert nx.is_connected(se.to_networkx())

    def test_necklace_edges_are_rotations(self):
        se = ShuffleExchangeGraph(2, 4)
        from repro.words import rotate_left

        for a, b in se.necklace_edges():
            assert rotate_left(a) == b or rotate_left(b) == a


class TestHypercube:
    def test_counts(self):
        q = HypercubeGraph(4)
        assert q.num_nodes == 16
        assert q.num_edges == 32
        assert sum(1 for _ in q.edges()) == 32

    def test_q12_vs_b46_edge_comparison(self):
        # Chapter 2 intro: the 4096-node hypercube has 24576 edges,
        # 50% more than the De Bruijn graph's 16384
        q = HypercubeGraph(12)
        assert q.num_nodes == 4096
        assert q.num_edges == 24576
        assert q.num_edges == int(1.5 * 16384)

    def test_neighbors_hamming_distance_one(self):
        q = HypercubeGraph(5)
        for v in [0, 7, 19, 31]:
            for u in q.neighbors(v):
                assert bin(u ^ v).count("1") == 1

    def test_gray_code_is_hamiltonian(self):
        for n in range(2, 7):
            q = HypercubeGraph(n)
            assert q.is_hamiltonian_cycle(gray_code_cycle(n))

    def test_fault_free_cycle_bound_values(self):
        # 4096-node hypercube with 2 faults -> cycle of length 4092
        assert fault_free_cycle_bound(12, 2) == 4092
        assert fault_free_cycle_bound(4, 0) == 16

    def test_fault_free_cycle_bound_budget(self):
        with pytest.raises(InvalidParameterError):
            fault_free_cycle_bound(4, 3)
        with pytest.raises(InvalidParameterError):
            fault_free_cycle_bound(4, -1)

    def test_bruteforce_achieves_bound_on_q3_q4(self):
        # single fault in Q(3): bound says 8 - 2 = 6
        cycle = longest_fault_free_cycle_bruteforce(3, [0])
        assert len(cycle) >= fault_free_cycle_bound(3, 1)
        q = HypercubeGraph(3)
        assert q.is_cycle(cycle)
        assert 0 not in cycle
        # two faults in Q(4): bound says 16 - 4 = 12
        cycle = longest_fault_free_cycle_bruteforce(4, [0, 15])
        assert len(cycle) >= fault_free_cycle_bound(4, 2)
        assert HypercubeGraph(4).is_cycle(cycle)

    def test_invalid_nodes_rejected(self):
        q = HypercubeGraph(3)
        with pytest.raises(InvalidParameterError):
            q.neighbors(8)
