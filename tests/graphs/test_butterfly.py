"""Tests for the butterfly graph and its De Bruijn quotient (Section 3.4)."""

from math import lcm

import pytest

from repro.exceptions import InvalidParameterError
from repro.graphs import (
    ButterflyGraph,
    DeBruijnGraph,
    debruijn_node_class,
    lift_cycle,
    lift_edge,
)


class TestButterflyStructure:
    def test_counts_f23(self):
        f = ButterflyGraph(2, 3)
        assert f.num_nodes == 24
        assert f.num_edges == 48
        assert len(list(f.nodes())) == 24
        assert sum(1 for _ in f.edges()) == 48

    def test_figure_3_4_sample_edges(self):
        # F(2,3): (0, 000) -> (1, 000) and (1, 100); levels wrap modulo 3
        f = ButterflyGraph(2, 3)
        assert f.has_edge((0, (0, 0, 0)), (1, (0, 0, 0)))
        assert f.has_edge((0, (0, 0, 0)), (1, (1, 0, 0)))
        assert f.has_edge((2, (0, 0, 1)), (0, (0, 0, 1)))
        assert f.has_edge((2, (0, 0, 1)), (0, (0, 0, 0)))
        assert not f.has_edge((0, (0, 0, 0)), (2, (0, 0, 0)))
        assert not f.has_edge((0, (0, 0, 0)), (1, (0, 1, 0)))

    def test_regularity(self):
        f = ButterflyGraph(3, 2)
        for node in f.nodes():
            assert len(f.successors(node)) == 3
            assert len(f.predecessors(node)) == 3

    def test_successor_predecessor_duality(self):
        f = ButterflyGraph(2, 3)
        for node in f.nodes():
            for s in f.successors(node):
                assert node in f.predecessors(s)

    def test_level_advances_by_one(self):
        f = ButterflyGraph(2, 4)
        for node in [(0, (0, 1, 0, 1)), (3, (1, 1, 0, 0))]:
            for level, _ in f.successors(node):
                assert level == (node[0] + 1) % 4

    def test_invalid_nodes_rejected(self):
        f = ButterflyGraph(2, 3)
        with pytest.raises(InvalidParameterError):
            f.successors((3, (0, 0, 0)))
        with pytest.raises(InvalidParameterError):
            f.successors((0, (0, 0)))
        with pytest.raises(InvalidParameterError):
            ButterflyGraph(2, 0)

    def test_to_networkx(self):
        f = ButterflyGraph(2, 2)
        g = f.to_networkx()
        assert g.number_of_nodes() == 8
        assert g.number_of_edges() == 16


class TestDeBruijnQuotient:
    def test_node_class_structure(self):
        # S_x = {(0,x), (1, pi^-1(x)), ..., (n-1, pi^-(n-1)(x))}
        cls = debruijn_node_class((1, 2, 0, 2), 3)
        assert cls[0] == (0, (1, 2, 0, 2))
        assert cls[1] == (1, (2, 1, 2, 0))
        assert cls[3] == (3, (2, 0, 2, 1))
        assert len(cls) == 4

    def test_classes_partition_butterfly_nodes(self):
        f = ButterflyGraph(2, 3)
        b = DeBruijnGraph(2, 3)
        seen = set()
        for x in b.nodes():
            members = set(f.node_class(x))
            assert not (members & seen)
            seen |= members
        assert seen == set(f.nodes())

    def test_lemma_3_8_edge_compatibility(self):
        # every De Bruijn edge lifts to a butterfly edge at every level
        f = ButterflyGraph(2, 3)
        b = DeBruijnGraph(2, 3)
        for src, dst in b.edges():
            for level in range(3):
                bsrc, bdst = lift_edge(src, dst, 2, level)
                assert f.has_edge(bsrc, bdst)

    def test_lift_edge_rejects_non_edge(self):
        with pytest.raises(InvalidParameterError):
            lift_edge((0, 1, 0), (1, 1, 1), 2, 0)

    def test_quotient_is_debruijn_figure_3_5(self):
        assert ButterflyGraph(2, 3).quotient_is_debruijn()
        assert ButterflyGraph(3, 2).quotient_is_debruijn()

    def test_node_class_requires_matching_length(self):
        f = ButterflyGraph(2, 3)
        with pytest.raises(InvalidParameterError):
            f.node_class((0, 1))


class TestCycleLifting:
    def test_paper_example_4_cycle_lifts_to_12_cycle(self):
        # Lemma 3.9 illustration: C = (110, 100, 001, 011) lifts to the
        # 12-cycle listed in the paper.
        cycle = [(1, 1, 0), (1, 0, 0), (0, 0, 1), (0, 1, 1)]
        lifted = lift_cycle(cycle, 2)
        expected = [
            (0, (1, 1, 0)),
            (1, (0, 1, 0)),
            (2, (0, 1, 0)),
            (0, (0, 1, 1)),
            (1, (0, 1, 1)),
            (2, (0, 0, 1)),
            (0, (0, 0, 1)),
            (1, (1, 0, 1)),
            (2, (1, 0, 1)),
            (0, (1, 0, 0)),
            (1, (1, 0, 0)),
            (2, (1, 1, 0)),
        ]
        assert lifted == expected
        assert ButterflyGraph(2, 3).is_cycle(lifted)

    def test_lift_length_is_lcm(self):
        b = DeBruijnGraph(3, 3)
        # a 3-cycle (necklace of 012) lifts to lcm(3,3)=3 nodes
        cycle = [(0, 1, 2), (1, 2, 0), (2, 0, 1)]
        assert b.is_cycle(cycle)
        lifted = lift_cycle(cycle, 3)
        assert len(lifted) == lcm(3, 3)
        assert ButterflyGraph(3, 3).is_cycle(lifted)

    def test_hamiltonian_cycle_lifts_to_hamiltonian_when_coprime(self):
        # gcd(d^n, n) handling: for B(2,3), the HC has length 8, lcm(8,3)=24
        # equals the butterfly node count, so the lift is Hamiltonian.
        b = DeBruijnGraph(2, 3)
        seq = [0, 0, 0, 1, 0, 1, 1, 1]
        hc = [tuple(seq[(i + j) % 8] for j in range(3)) for i in range(8)]
        assert b.is_hamiltonian_cycle(hc)
        lifted = lift_cycle(hc, 2)
        f = ButterflyGraph(2, 3)
        assert f.is_hamiltonian_cycle(lifted)

    def test_lift_empty_cycle_rejected(self):
        with pytest.raises(InvalidParameterError):
            lift_cycle([], 2)

    def test_loop_lifts_to_level_cycle(self):
        # the loop at 111 lifts to the length-3 column cycle through levels
        lifted = lift_cycle([(1, 1, 1)], 2)
        assert len(lifted) == 3
        assert ButterflyGraph(2, 3).is_cycle(lifted)
