"""The churn-trace format and generators: replayable, validated, seeded."""

import json

import pytest

from repro.churn import (
    TRACE_SCHEMA,
    ChurnEvent,
    ChurnTrace,
    generate_trace,
    loads_trace,
    read_trace,
    write_trace,
)
from repro.exceptions import ChurnTraceError, InvalidParameterError
from repro.topology import get_topology


class TestTraceFormat:
    def test_round_trip_is_lossless_and_dumps_byte_identical(self, tmp_path):
        trace = generate_trace("independent", "debruijn", 2, 6, events=50, seed=11)
        path = tmp_path / "trace.jsonl"
        write_trace(trace, str(path))
        loaded = read_trace(str(path))
        assert loaded == trace
        assert loaded.dumps() == trace.dumps()
        assert loads_trace(trace.dumps()) == trace

    def test_header_line_carries_schema_and_event_count(self):
        trace = generate_trace("independent", "debruijn", 2, 5, events=7, seed=0)
        header = json.loads(trace.dumps().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["kind"] == "churn-trace"
        assert header["events"] == 7
        assert header["params"]["p_fault"] == 0.6

    def test_truncated_trace_is_rejected(self):
        trace = generate_trace("independent", "debruijn", 2, 5, events=10, seed=1)
        lines = trace.dumps().splitlines()
        with pytest.raises(ChurnTraceError, match="truncated"):
            read_trace(lines[:-2])

    def test_unknown_schema_and_topology_are_rejected(self):
        good = generate_trace("independent", "debruijn", 2, 5, events=2, seed=1)
        lines = good.dumps().splitlines()
        bad_schema = json.loads(lines[0])
        bad_schema["schema"] = 99
        with pytest.raises(ChurnTraceError, match="unsupported trace schema"):
            read_trace([json.dumps(bad_schema)] + lines[1:])
        bad_topo = json.loads(lines[0])
        bad_topo["topology"] = "torus"
        with pytest.raises(ChurnTraceError, match="unknown topology"):
            read_trace([json.dumps(bad_topo)] + lines[1:])

    def test_illegal_event_streams_are_rejected(self):
        node = (0, 1, 0, 1, 0)
        with pytest.raises(ChurnTraceError, match="already faulty"):
            ChurnTrace(
                "debruijn", 2, 5, "manual", 0,
                events=(ChurnEvent(0, "fault", node), ChurnEvent(1, "fault", node)),
            ).validate()
        with pytest.raises(ChurnTraceError, match="not faulty"):
            ChurnTrace(
                "debruijn", 2, 5, "manual", 0, events=(ChurnEvent(0, "heal", node),)
            ).validate()
        with pytest.raises(ChurnTraceError, match="seq must count up"):
            ChurnTrace(
                "debruijn", 2, 5, "manual", 0, events=(ChurnEvent(3, "fault", node),)
            ).validate()


class TestGenerators:
    @pytest.mark.parametrize("generator", ["independent", "orbit", "adversarial"])
    def test_same_seed_regenerates_byte_identically(self, generator):
        a = generate_trace(generator, "debruijn", 2, 5, events=30, seed=9)
        b = generate_trace(generator, "debruijn", 2, 5, events=30, seed=9)
        assert a.dumps() == b.dumps()

    def test_different_seeds_differ(self):
        a = generate_trace("independent", "debruijn", 2, 6, events=30, seed=0)
        b = generate_trace("independent", "debruijn", 2, 6, events=30, seed=1)
        assert a.dumps() != b.dumps()

    def test_generated_traces_validate_on_any_topology(self):
        for topology in ("debruijn", "hypercube", "shuffle_exchange"):
            trace = generate_trace("independent", topology, 2, 6, events=40, seed=3)
            trace.validate()  # raises on any illegal stream
            assert trace.topology == topology

    def test_orbit_generator_clusters_within_fault_units(self):
        """With cluster_p=1 every fault after the first lands in an
        already-hit necklace whenever one has a healthy member left."""
        topo = get_topology("debruijn", 2, 6)
        trace = generate_trace(
            "orbit", "debruijn", 2, 6, events=60, seed=4, cluster_p=1.0
        )

        def rep_of(code):
            return int(topo.fault_unit_reps([code])[0])

        clustered = independent = 0
        faulty: set[int] = set()
        for event in trace.events:
            code = topo.encode(event.node)
            if event.op == "heal":
                faulty.discard(code)
                continue
            hit_units = {rep_of(c) for c in faulty}
            if faulty:
                if rep_of(code) in hit_units:
                    clustered += 1
                else:
                    independent += 1
            faulty.add(code)
        # clustering dominates: the only non-clustered faults are those where
        # every already-hit unit was fully faulted
        assert clustered > independent

    def test_adversarial_faults_land_on_the_current_ring(self):
        from repro.core.ffc import find_fault_free_cycle

        trace = generate_trace("adversarial", "debruijn", 2, 5, events=12, seed=2)
        faults: list = []
        for event in trace.events:
            if event.op == "fault":
                cycle = set(find_fault_free_cycle(2, 5, faults).cycle)
                assert event.node in cycle
                faults.append(event.node)
            else:
                faults.remove(event.node)

    def test_adversarial_is_debruijn_only(self):
        with pytest.raises(InvalidParameterError, match="debruijn-only"):
            generate_trace("adversarial", "hypercube", 2, 6, events=5, seed=0)

    def test_max_faults_ceiling_is_respected(self):
        trace = generate_trace(
            "independent", "debruijn", 2, 6, events=200, seed=5, max_faults=3
        )
        faulty: set = set()
        for event in trace.events:
            if event.op == "fault":
                faulty.add(event.node)
            else:
                faulty.discard(event.node)
            assert len(faulty) <= 3

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError, match="unknown churn generator"):
            generate_trace("nope", "debruijn", 2, 5, events=5, seed=0)
        with pytest.raises(InvalidParameterError, match="p_fault"):
            generate_trace("independent", "debruijn", 2, 5, events=5, seed=0,
                           p_fault=1.5)
        with pytest.raises(InvalidParameterError, match="max_faults"):
            generate_trace("independent", "debruijn", 2, 5, events=5, seed=0,
                           max_faults=0)
