"""The seeded fault-injection middleware: deterministic, bounded, observable."""

import pytest

from repro.churn.chaos import CHAOS_KINDS, ChaosConfig, ChaosDecision, ChaosInjector
from repro.exceptions import InvalidParameterError
from repro.obs import MetricsRegistry


class TestConfig:
    def test_disabled_by_default(self):
        assert ChaosConfig().enabled is False
        assert ChaosConfig(error_p=0.1).enabled is True

    def test_probabilities_are_validated(self):
        with pytest.raises(InvalidParameterError):
            ChaosConfig(drop_p=-0.1)
        with pytest.raises(InvalidParameterError):
            ChaosConfig(error_p=1.5)
        with pytest.raises(InvalidParameterError):
            ChaosConfig(drop_p=0.6, error_p=0.6)  # sum > 1
        with pytest.raises(InvalidParameterError):
            ChaosConfig(delay_p=0.1, delay_ms=-1.0)


class TestInjector:
    def test_same_seed_yields_the_same_decision_stream(self):
        config = ChaosConfig(seed=3, drop_p=0.2, error_p=0.2, delay_p=0.2)
        a = ChaosInjector(config)
        b = ChaosInjector(config)
        decisions_a = [a.decide("POST /measure") for _ in range(200)]
        decisions_b = [b.decide("POST /measure") for _ in range(200)]
        assert decisions_a == decisions_b
        kinds = {d.kind for d in decisions_a if d is not None}
        assert kinds == {"drop", "error", "delay"}

    def test_uninjected_endpoints_are_left_alone(self):
        config = ChaosConfig(seed=0, drop_p=1.0)
        injector = ChaosInjector(config)
        assert injector.decide("GET /stats") is None
        assert injector.decide("GET /metrics") is None
        assert injector.decide("POST /measure") == ChaosDecision(kind="drop")

    def test_delay_decisions_carry_the_configured_delay(self):
        injector = ChaosInjector(ChaosConfig(seed=0, delay_p=1.0, delay_ms=40.0))
        decision = injector.decide("POST /embed")
        assert decision.kind == "delay"
        assert decision.delay_s == pytest.approx(0.04)

    def test_injections_are_counted_per_endpoint_and_kind(self):
        registry = MetricsRegistry()
        injector = ChaosInjector(
            ChaosConfig(seed=1, error_p=0.5), registry=registry
        )
        injected = sum(
            injector.decide("POST /churn") is not None for _ in range(100)
        )
        counter = registry.counter(
            "repro_chaos_injections_total", "", ("endpoint", "kind")
        )
        assert int(counter.labels("POST /churn", "error").value()) == injected
        assert injected > 0

    def test_kind_order_is_pinned(self):
        # the cumulative-threshold evaluation order is part of the replay
        # contract: reordering kinds would change every seeded stream
        assert CHAOS_KINDS == ("drop", "error", "delay", "saturate")
