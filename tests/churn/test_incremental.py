"""Incremental re-embedding: bit-for-bit equal to batch recomputation, always.

The property the whole churn engine rests on: for ANY legal event stream,
``EmbeddingService.apply_event`` returns exactly what a fresh service's full
``submit`` would return for the same cumulative fault set — the incremental
path may only ever reuse answers it could have recomputed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.service import EmbeddingService
from repro.exceptions import InvalidParameterError

GRID = [(2, 4), (2, 5), (3, 3)]


def _random_stream(data, d, n, steps):
    """A legal fault/heal stream drawn from hypothesis: list of (op, node)."""
    faulty: list = []
    stream = []
    for i in range(steps):
        can_heal = bool(faulty)
        heal = can_heal and data.draw(st.booleans(), label=f"heal{i}")
        if heal:
            node = faulty.pop(data.draw(
                st.integers(0, len(faulty) - 1), label=f"pick{i}"
            ))
            stream.append(("heal", node))
        else:
            while True:
                node = tuple(
                    data.draw(st.integers(0, d - 1), label=f"digit{i}")
                    for _ in range(n)
                )
                if node not in faulty:
                    break
            faulty.append(node)
            stream.append(("fault", node))
    return stream


class TestIncrementalEqualsFull:
    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(GRID), st.data())
    def test_every_incremental_answer_is_bit_for_bit_the_full_one(self, dn, data):
        d, n = dn
        steps = data.draw(st.integers(1, 10), label="steps")
        stream = _random_stream(data, d, n, steps)
        service = EmbeddingService()
        oracle = EmbeddingService(max_cached_answers=1)  # effectively uncached
        faults: list = []
        for seq, (op, node) in enumerate(stream):
            response = service.apply_event(d, n, op, node, seq=seq)
            if op == "fault":
                faults.append(node)
            else:
                faults.remove(node)
            full = oracle.embed(d, n, faults=sorted(faults))
            assert response.cycle == full.cycle
            assert response.length == full.length
            assert response.faults == full.faults
            assert response.faulty_necklaces == full.faulty_necklaces
            assert response.guarantee_bound == full.guarantee_bound
            assert response.meets_guarantee == full.meets_guarantee

    def test_same_necklace_event_takes_the_incremental_path(self):
        service = EmbeddingService()
        # (0,1) and (1,0) are rotations: one necklace, two nodes
        service.apply_event(2, 2, "fault", (0, 1), seq=0)
        before = service.stats()["churn"]
        response = service.apply_event(2, 2, "fault", (1, 0), seq=1)
        after = service.stats()["churn"]
        assert after["incremental"] == before["incremental"] + 1
        assert after["full"] == before["full"]
        assert response.cached is True
        # healing one rotation keeps the necklace faulty: still incremental
        service.apply_event(2, 2, "heal", (0, 1), seq=2)
        assert service.stats()["churn"]["incremental"] == before["incremental"] + 2


class TestSeqIdempotency:
    def test_replaying_the_last_seq_returns_the_stored_response(self):
        service = EmbeddingService()
        first = service.apply_event(2, 4, "fault", (0, 0, 1, 1), seq=0)
        replay = service.apply_event(2, 4, "fault", (0, 0, 1, 1), seq=0)
        assert replay is first
        assert service.stats()["churn"]["replayed"] == 1
        # the fault was applied once: healing it twice must fail
        service.apply_event(2, 4, "heal", (0, 0, 1, 1), seq=1)
        with pytest.raises(InvalidParameterError, match="not faulty"):
            service.apply_event(2, 4, "heal", (0, 0, 1, 1), seq=2)

    def test_gapped_and_out_of_order_seqs_are_rejected(self):
        service = EmbeddingService()
        service.apply_event(2, 4, "fault", (0, 0, 1, 1), seq=0)
        with pytest.raises(InvalidParameterError, match="expected 1"):
            service.apply_event(2, 4, "fault", (0, 1, 1, 1), seq=5)
        # redelivery of the last seq must carry the same event body
        with pytest.raises(InvalidParameterError, match="different event"):
            service.apply_event(2, 4, "fault", (0, 1, 1, 1), seq=0)
        # fresh sessions must start at 0
        with pytest.raises(InvalidParameterError, match="expected 0"):
            service.apply_event(2, 5, "fault", (0, 1, 1, 1, 0), seq=3)

    def test_reset_churn_starts_a_fresh_session(self):
        service = EmbeddingService()
        service.apply_event(2, 4, "fault", (0, 0, 1, 1), seq=0)
        service.reset_churn(2, 4)
        # the old fault set is gone and seq restarts at 0
        response = service.apply_event(2, 4, "fault", (0, 1, 0, 1), seq=0)
        assert response.faults == ((0, 1, 0, 1),)

    def test_illegal_ops_and_nodes_are_rejected(self):
        service = EmbeddingService()
        with pytest.raises(InvalidParameterError, match="fault' or 'heal"):
            service.apply_event(2, 4, "explode", (0, 0, 1, 1))
        with pytest.raises(InvalidParameterError):
            service.apply_event(2, 4, "fault", (0, 0, 7, 1))
        service.apply_event(2, 4, "fault", (0, 0, 1, 1))
        with pytest.raises(InvalidParameterError, match="already faulty"):
            service.apply_event(2, 4, "fault", (0, 0, 1, 1))
