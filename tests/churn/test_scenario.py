"""The scenario driver: deterministic reports, oracle comparison, bench history."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn import generate_trace, run_scenario
from repro.churn.scenario import ScenarioReport
from repro.engine.service import EmbeddingService
from repro.exceptions import ScenarioMismatchError


class TestOfflineReplayDeterminism:
    def test_replaying_one_trace_yields_byte_identical_canonical_reports(self):
        trace = generate_trace("orbit", "debruijn", 2, 5, events=40, seed=13)
        first = run_scenario(trace)
        second = run_scenario(trace)
        assert first.canonical_json() == second.canonical_json()
        assert first.mismatches == []
        assert first.events == 40
        assert first.incremental + first.full == 40

    def test_canonical_part_excludes_wall_clock_and_transport(self):
        trace = generate_trace("independent", "debruijn", 2, 4, events=6, seed=1)
        report = run_scenario(trace)
        canonical = report.canonical_dict()
        assert "elapsed_s" not in canonical
        assert "transport" not in canonical
        assert "retries" not in canonical
        full = report.as_dict()
        assert full["transport"] == "offline"
        assert full["elapsed_s"] > 0

    def test_fresh_and_warm_services_report_identically(self):
        """The canonical report may not depend on cache temperature."""
        trace = generate_trace("independent", "debruijn", 2, 5, events=20, seed=3)
        warm = EmbeddingService()
        run_scenario(trace, service=warm)
        warmed_again = run_scenario(trace, service=warm)
        fresh = run_scenario(trace, service=EmbeddingService())
        assert warmed_again.canonical_json() == fresh.canonical_json()

    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from(["independent", "orbit", "adversarial"]),
        st.integers(0, 10_000),
    )
    def test_any_seeded_trace_replays_identically(self, generator, seed):
        """The property the CI chaos-smoke job leans on, for ANY seed."""
        trace = generate_trace(generator, "debruijn", 2, 4, events=8, seed=seed)
        first = run_scenario(trace)
        second = run_scenario(trace)
        assert first.canonical_json() == second.canonical_json()
        assert first.mismatches == []

    def test_measure_only_topologies_replay_without_embeds(self):
        trace = generate_trace("independent", "hypercube", 2, 6, events=25, seed=8)
        report = run_scenario(trace)
        assert report.events == 25
        assert report.final_ring_length is None
        assert report.final_region_size is not None
        assert report.incremental == report.full == 0  # no churn sessions used


class TestMismatchDetection:
    def test_a_tampered_service_fails_the_scenario(self):
        class LyingService(EmbeddingService):
            def apply_event(self, *args, **kwargs):
                response = super().apply_event(*args, **kwargs)
                # corrupt the reported ring length
                object.__setattr__(response, "length", response.length - 1)
                return response

        trace = generate_trace("independent", "debruijn", 2, 4, events=5, seed=2)
        with pytest.raises(ScenarioMismatchError) as excinfo:
            run_scenario(trace, service=LyingService())
        report = excinfo.value.report
        assert isinstance(report, ScenarioReport)
        assert report.mismatches
        assert all(m["endpoint"] == "churn" for m in report.mismatches)
        assert "length" in report.mismatches[0]["keys"]

    def test_non_strict_returns_the_mismatching_report(self):
        class LyingService(EmbeddingService):
            def apply_event(self, *args, **kwargs):
                response = super().apply_event(*args, **kwargs)
                object.__setattr__(response, "length", 0)
                return response

        trace = generate_trace("independent", "debruijn", 2, 4, events=3, seed=2)
        report = run_scenario(trace, service=LyingService(), strict=False)
        assert len(report.mismatches) == 3


class TestBenchHistory:
    def test_reports_append_to_the_run_history(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        trace = generate_trace("independent", "debruijn", 2, 4, events=4, seed=0)
        run_scenario(trace, bench_path=str(path))
        run_scenario(trace, bench_path=str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == 3
        assert len(payload["runs"]) == 2
        assert len(payload["churn"]) == 1
        entry = payload["churn"][0]
        assert entry["kind"] == "churn-scenario"
        assert entry["mismatches"] == []
        # both runs replayed the same trace: identical canonical cores
        assert payload["runs"][0]["churn"][0]["answers_digest"] == entry["answers_digest"]
