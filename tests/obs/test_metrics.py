"""repro.obs metrics: exact concurrent counts, valid exposition, the gate."""

import math
import threading

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    obs_disabled,
    parse_prometheus_text,
    set_obs_disabled,
)
from repro.obs.metrics import render_registries


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("repro_test_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_inc_is_rejected(self, registry):
        c = registry.counter("repro_test_total", "help")
        with pytest.raises(InvalidParameterError):
            c.inc(-1)

    def test_labelled_children_are_independent(self, registry):
        c = registry.counter("repro_req_total", "help", labelnames=("endpoint",))
        c.labels("a").inc()
        c.labels("a").inc()
        c.labels("b").inc()
        assert c.items() == [(("a",), 2.0), (("b",), 1.0)]
        assert c.value() == 3.0

    def test_wrong_label_arity_is_rejected(self, registry):
        c = registry.counter("repro_req_total", "help", labelnames=("endpoint",))
        with pytest.raises(InvalidParameterError):
            c.labels("a", "b")

    def test_exact_totals_under_eight_threads(self, registry):
        # the whole point of per-child locks: k incs from t threads read k*t
        c = registry.counter("repro_hits_total", "help", labelnames=("worker",))
        h = registry.histogram("repro_lat_seconds", "help")
        per_thread, threads = 2_000, 8
        barrier = threading.Barrier(threads)

        def worker(i):
            child = c.labels("w%d" % (i % 2))  # two children, contended
            barrier.wait()
            for _ in range(per_thread):
                child.inc()
                h.observe(0.001)

        pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert c.value() == per_thread * threads
        assert dict(c.items()) == {
            ("w0",): per_thread * threads / 2,
            ("w1",): per_thread * threads / 2,
        }
        assert h.count == per_thread * threads
        assert h.sum == pytest.approx(0.001 * per_thread * threads)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("repro_up", "help")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value() == 4.0


class TestHistogram:
    def test_bucket_counts_are_cumulative_and_end_at_inf(self, registry):
        hist = registry.histogram(
            "repro_h_seconds", "help", buckets=(0.01, 0.1, 1.0)
        )
        for v in (0.005, 0.05, 0.5, 5.0):
            hist.observe(v)
        pairs = hist.labels().cumulative_buckets()
        assert pairs == [(0.01, 1), (0.1, 2), (1.0, 3), (math.inf, 4)]
        counts = [c for _, c in pairs]
        assert counts == sorted(counts)  # monotone by construction
        assert pairs[-1][1] == hist.count  # +Inf bucket equals _count

    def test_boundary_value_lands_in_its_le_bucket(self, registry):
        hist = registry.histogram("repro_h_seconds", "help", buckets=(0.1, 1.0))
        hist.observe(0.1)  # le="0.1" is inclusive
        assert hist.labels().cumulative_buckets()[0] == (0.1, 1)

    def test_sample_window_is_bounded(self, registry):
        hist = registry.histogram(
            "repro_h_seconds", "help", buckets=(1.0,), max_samples=4
        )
        for v in range(10):
            hist.observe(float(v))
        assert hist.samples() == [6.0, 7.0, 8.0, 9.0]

    def test_infinite_top_bucket_is_implicit(self, registry):
        hist = registry.histogram(
            "repro_h_seconds", "help", buckets=(1.0, math.inf)
        )
        assert hist.buckets == (1.0,)

    def test_needs_a_finite_bucket(self, registry):
        with pytest.raises(InvalidParameterError):
            registry.histogram("repro_h_seconds", "help", buckets=(math.inf,))


class TestRegistry:
    def test_get_or_create_returns_the_same_family(self, registry):
        a = registry.counter("repro_x_total", "help")
        b = registry.counter("repro_x_total", "other help ignored")
        assert a is b

    def test_kind_mismatch_is_rejected(self, registry):
        registry.counter("repro_x_total", "help")
        with pytest.raises(InvalidParameterError):
            registry.gauge("repro_x_total", "help")

    def test_labelnames_mismatch_is_rejected(self, registry):
        registry.counter("repro_x_total", "help", labelnames=("a",))
        with pytest.raises(InvalidParameterError):
            registry.counter("repro_x_total", "help", labelnames=("b",))

    def test_invalid_metric_and_label_names_are_rejected(self, registry):
        with pytest.raises(InvalidParameterError):
            registry.counter("0bad", "help")
        with pytest.raises(InvalidParameterError):
            registry.counter("repro_x_total", "help", labelnames=("le-gal",))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestExposition:
    def test_render_parse_round_trip(self, registry):
        c = registry.counter("repro_req_total", "requests", ("endpoint",))
        c.labels("POST /measure").inc(3)
        registry.gauge("repro_up_seconds", "uptime").set(1.5)
        hist = registry.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.render()
        assert "# HELP repro_req_total requests" in text
        assert "# TYPE repro_lat_seconds histogram" in text
        parsed = parse_prometheus_text(text)
        assert parsed["repro_req_total"] == [({"endpoint": "POST /measure"}, 3.0)]
        assert parsed["repro_up_seconds"] == [({}, 1.5)]
        buckets = parsed["repro_lat_seconds_bucket"]
        assert [(lbl["le"], v) for lbl, v in buckets] == [
            ("0.1", 1.0), ("1", 2.0), ("+Inf", 2.0)
        ]
        assert parsed["repro_lat_seconds_count"] == [({}, 2.0)]
        assert parsed["repro_lat_seconds_sum"][0][1] == pytest.approx(0.55)

    def test_label_values_are_escaped_and_recovered(self, registry):
        c = registry.counter("repro_x_total", "help", ("shard",))
        tricky = 'debruijn(2,5)@"a\\b",c=d\nend'
        c.labels(tricky).inc()
        parsed = parse_prometheus_text(registry.render())
        assert parsed["repro_x_total"] == [({"shard": tricky}, 1.0)]

    def test_help_newlines_are_escaped(self, registry):
        registry.counter("repro_x_total", "line one\nline two").inc()
        text = registry.render()
        assert "# HELP repro_x_total line one\\nline two" in text
        parse_prometheus_text(text)  # still a valid document

    def test_malformed_sample_lines_raise(self):
        for bad in (
            "not a metric line at all!",
            'repro_x_total{shard="a" junk} 1',
            "repro_x_total notanumber",
        ):
            with pytest.raises(InvalidParameterError):
                parse_prometheus_text(bad)

    def test_render_registries_concatenates(self, registry):
        other = MetricsRegistry()
        registry.counter("repro_a_total", "help").inc()
        other.counter("repro_b_total", "help").inc(2)
        parsed = parse_prometheus_text(render_registries([registry, other]))
        assert parsed["repro_a_total"][0][1] == 1.0
        assert parsed["repro_b_total"][0][1] == 2.0


class TestDisabledGate:
    def test_disabled_mutations_are_noops(self, registry):
        c = registry.counter("repro_x_total", "help")
        g = registry.gauge("repro_g", "help")
        hist = registry.histogram("repro_h_seconds", "help", buckets=(1.0,))
        assert not obs_disabled()
        set_obs_disabled(True)
        try:
            assert obs_disabled()
            c.inc()
            g.set(9)
            hist.observe(0.5)
        finally:
            set_obs_disabled(False)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert hist.count == 0 and hist.samples() == []
        c.inc()  # re-enabled: mutation flows again
        assert c.value() == 1.0


class TestFamilyConstructors:
    def test_families_usable_without_a_registry(self):
        c = Counter("repro_x_total", "help")
        c.inc(2)
        assert c.value() == 2.0
        g = Gauge("repro_g", "help")
        g.set(1)
        assert g.value() == 1.0
        hist = Histogram("repro_h_seconds", "help", buckets=(1.0,))
        hist.observe(0.5)
        assert hist.count == 1
