"""repro.obs tracing: span recording, the bounded ring, JSONL export."""

import json
import time

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs import Trace, Tracer, set_obs_disabled


class TestTrace:
    def test_span_context_manager_records_a_stage(self):
        trace = Tracer().trace()
        with trace.span("gateway"):
            time.sleep(0.001)
        (span,) = trace.spans()
        assert span.stage == "gateway"
        assert span.duration_s >= 0.001
        assert span.start_s >= 0.0

    def test_add_span_stores_starts_relative_to_the_epoch(self):
        trace = Tracer().trace()
        t0 = trace.t0
        trace.add_span("kernel", t0 + 0.5, t0 + 0.75)
        (span,) = trace.spans()
        assert span.start_s == pytest.approx(0.5)
        assert span.duration_s == pytest.approx(0.25)

    def test_negative_readings_are_clamped(self):
        trace = Tracer().trace()
        trace.add_span("weird", trace.t0 - 1.0, trace.t0 - 2.0)
        (span,) = trace.spans()
        assert span.start_s == 0.0 and span.duration_s == 0.0

    def test_as_dict_sums_span_durations(self):
        trace = Tracer().trace()
        trace.add_span("a", trace.t0, trace.t0 + 0.1)
        trace.add_span("b", trace.t0 + 0.1, trace.t0 + 0.3)
        record = trace.as_dict()
        assert record["elapsed_s"] == pytest.approx(0.3)
        assert [s["stage"] for s in record["spans"]] == ["a", "b"]

    def test_finish_overrides_elapsed_and_lands_in_the_ring(self):
        tracer = Tracer()
        trace = tracer.trace()
        trace.add_span("a", trace.t0, trace.t0 + 0.1)
        record = trace.finish(elapsed_s=0.125)
        assert record["elapsed_s"] == 0.125
        assert tracer.get(trace.trace_id)["elapsed_s"] == 0.125

    def test_disabled_gate_drops_spans(self):
        trace = Tracer().trace()
        set_obs_disabled(True)
        try:
            with trace.span("gateway"):
                pass
            trace.add_span("kernel", trace.t0, trace.t0 + 1.0)
        finally:
            set_obs_disabled(False)
        assert trace.spans() == ()

    def test_standalone_trace_finish_without_tracer(self):
        trace = Trace("solo")
        trace.add_span("a", trace.t0, trace.t0 + 0.1)
        assert trace.finish()["trace_id"] == "solo"


class TestTracer:
    def test_minted_ids_are_distinct_hex(self):
        tracer = Tracer()
        ids = {tracer.trace().trace_id for _ in range(32)}
        assert len(ids) == 32
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_supplied_ids_are_validated(self):
        tracer = Tracer()
        assert tracer.trace("my-trace.1_ok").trace_id == "my-trace.1_ok"
        for bad in ("", "has space", "x" * 65, 'quote"id', "new\nline"):
            with pytest.raises(InvalidParameterError):
                tracer.trace(bad)

    def test_ring_is_bounded_and_drops_oldest(self):
        tracer = Tracer(max_traces=3)
        for i in range(5):
            tracer.trace(f"t{i}").finish()
        assert len(tracer) == 3
        assert [r["trace_id"] for r in tracer.recent()] == ["t2", "t3", "t4"]
        assert tracer.get("t0") is None

    def test_reused_id_keeps_the_newest_record(self):
        tracer = Tracer(max_traces=2)
        tracer.trace("a").finish(elapsed_s=1.0)
        tracer.trace("b").finish()
        tracer.trace("a").finish(elapsed_s=2.0)
        tracer.trace("c").finish()  # evicts b (oldest), not the refreshed a
        assert tracer.get("a")["elapsed_s"] == 2.0
        assert tracer.get("b") is None

    def test_max_traces_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            Tracer(max_traces=0)


class TestExport:
    def test_jsonl_is_one_record_per_line_oldest_first(self):
        tracer = Tracer()
        for name in ("t1", "t2"):
            trace = tracer.trace(name)
            trace.add_span("a", trace.t0, trace.t0 + 0.1)
            trace.finish()
        lines = tracer.export_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["trace_id"] for r in records] == ["t1", "t2"]
        assert set(records[0]) == {"trace_id", "unix_time", "elapsed_s", "spans"}
        assert set(records[0]["spans"][0]) == {"stage", "start_s", "duration_s"}

    def test_jsonl_filter_by_id(self):
        tracer = Tracer()
        tracer.trace("keep").finish()
        tracer.trace("drop").finish()
        lines = tracer.export_jsonl("keep").splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["trace_id"] == "keep"
        assert tracer.export_jsonl("missing") == ""
