"""Unit and property tests for repro.gf.field (GF(p^e) arithmetic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, NotPrimePowerError
from repro.gf import GF, ExtensionField, PrimeField

FIELD_ORDERS = [2, 3, 4, 5, 7, 8, 9, 13, 16, 25, 27]


@pytest.fixture(params=FIELD_ORDERS)
def field(request):
    return GF(request.param)


class TestConstruction:
    def test_factory_prime(self):
        assert isinstance(GF(7), PrimeField)

    def test_factory_extension(self):
        assert isinstance(GF(8), ExtensionField)

    def test_factory_rejects_non_prime_power(self):
        with pytest.raises(NotPrimePowerError):
            GF(6)
        with pytest.raises(NotPrimePowerError):
            GF(12)

    def test_factory_is_cached(self):
        assert GF(9) is GF(9)

    def test_prime_field_rejects_modulus(self):
        with pytest.raises(InvalidParameterError):
            GF(5, modulus=(1, 1))

    def test_extension_rejects_reducible_modulus(self):
        # x^2 + 1 = (x+1)^2 over GF(2)
        with pytest.raises(InvalidParameterError):
            ExtensionField(2, 2, modulus=(1, 0, 1))

    def test_extension_accepts_explicit_irreducible_modulus(self):
        # x^2 + x + 1 is irreducible over GF(2)
        f = ExtensionField(2, 2, modulus=(1, 1, 1))
        assert f.order == 4

    def test_attributes(self):
        f = GF(27)
        assert f.characteristic == 3
        assert f.degree == 3
        assert f.order == 27
        assert list(f.elements) == list(range(27))


class TestFieldAxioms:
    def test_additive_group(self, field):
        q = field.order
        for a in range(q):
            assert field.add(a, field.zero) == a
            assert field.add(a, field.neg(a)) == field.zero
        # commutativity / associativity on a sample
        sample = list(range(min(q, 8)))
        for a in sample:
            for b in sample:
                assert field.add(a, b) == field.add(b, a)
                for c in sample:
                    assert field.add(field.add(a, b), c) == field.add(a, field.add(b, c))

    def test_multiplicative_group(self, field):
        q = field.order
        for a in range(1, q):
            inv = field.inv(a)
            assert field.mul(a, inv) == field.one
            assert field.mul(a, field.one) == a
        sample = list(range(1, min(q, 9)))
        for a in sample:
            for b in sample:
                assert field.mul(a, b) == field.mul(b, a)

    def test_distributivity(self, field):
        q = field.order
        sample = list(range(min(q, 7)))
        for a in sample:
            for b in sample:
                for c in sample:
                    lhs = field.mul(a, field.add(b, c))
                    rhs = field.add(field.mul(a, b), field.mul(a, c))
                    assert lhs == rhs

    def test_no_zero_divisors(self, field):
        q = field.order
        for a in range(1, q):
            for b in range(1, q):
                assert field.mul(a, b) != field.zero

    def test_division_by_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(field.zero)

    def test_characteristic_additive_order(self, field):
        p = field.characteristic
        total = field.zero
        for _ in range(p):
            total = field.add(total, field.one)
        assert total == field.zero

    def test_frobenius_is_additive(self, field):
        # (a + b)^p = a^p + b^p in characteristic p
        p = field.characteristic
        q = field.order
        sample = list(range(min(q, 9)))
        for a in sample:
            for b in sample:
                lhs = field.pow(field.add(a, b), p)
                rhs = field.add(field.pow(a, p), field.pow(b, p))
                assert lhs == rhs

    def test_fermat_little_theorem(self, field):
        q = field.order
        for a in range(1, q):
            assert field.pow(a, q - 1) == field.one

    def test_out_of_range_rejected(self, field):
        with pytest.raises(InvalidParameterError):
            field.add(field.order, 0)
        with pytest.raises(InvalidParameterError):
            field.mul(0, -1)


class TestHelperOperations:
    def test_sub_div(self):
        f = GF(7)
        assert f.sub(3, 5) == 5
        assert f.div(6, 2) == 3

    def test_pow_negative_exponent(self):
        f = GF(9)
        for a in range(1, 9):
            assert f.mul(f.pow(a, -1), a) == f.one
            assert f.pow(a, -2) == f.inv(f.mul(a, a))

    def test_sum_and_dot(self):
        f = GF(5)
        assert f.sum([1, 2, 3, 4]) == 0
        assert f.dot([1, 2], [3, 4]) == (3 + 8) % 5

    def test_generator_has_full_order(self, field):
        g = field.generator()
        assert field.multiplicative_order(g) == field.order - 1

    def test_multiplicative_order_of_one(self, field):
        assert field.multiplicative_order(field.one) == 1

    def test_multiplicative_order_of_zero_raises(self, field):
        with pytest.raises(InvalidParameterError):
            field.multiplicative_order(field.zero)


class TestExtensionEncoding:
    def test_coeff_roundtrip_gf8(self):
        f = GF(8)
        for a in range(8):
            assert f.from_coeffs(f.to_coeffs(a)) == a

    def test_coeff_roundtrip_gf27(self):
        f = GF(27)
        for a in range(27):
            coeffs = f.to_coeffs(a)
            assert len(coeffs) == 3
            assert all(0 <= c < 3 for c in coeffs)
            assert f.from_coeffs(coeffs) == a

    def test_addition_is_componentwise(self):
        f = GF(9)
        p = f.characteristic
        for a in range(9):
            for b in range(9):
                ca, cb = f.to_coeffs(a), f.to_coeffs(b)
                expected = f.from_coeffs((x + y) % p for x, y in zip(ca, cb))
                assert f.add(a, b) == expected

    def test_gf4_multiplication_table_from_paper(self):
        # Example 3.2: GF(2^2) = {0, 1, z, z^2} with z^2 + z + 1 = 0, so
        # 1 + z = z^2, z * z^2 = 1, z^3 = 1.  With modulus x^2+x+1 the element
        # encodings are: 0->0, 1->1, z->2, z^2 = z+1 -> 3.
        f = GF(4, modulus=(1, 1, 1))
        z, z2 = 2, 3
        assert f.add(1, z) == z2
        assert f.add(1, z2) == z
        assert f.add(z, z2) == 1
        assert f.mul(z, z) == z2
        assert f.mul(z, z2) == 1
        assert f.pow(z, 3) == 1


class TestEquality:
    def test_fields_with_same_order_equal(self):
        assert GF(8) == GF(8)
        assert hash(GF(8)) == hash(GF(8))

    def test_fields_with_different_order_not_equal(self):
        assert GF(8) != GF(9)

    def test_extension_with_different_modulus_not_equal(self):
        # GF(4) with the standard modulus vs explicitly constructed one
        default = GF(4)
        other = ExtensionField(2, 2, modulus=(1, 1, 1))
        assert default.modulus == (1, 1, 1)
        assert default == other


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(FIELD_ORDERS), st.data())
def test_random_triples_satisfy_ring_identities(q, data):
    f = GF(q)
    a = data.draw(st.integers(0, q - 1))
    b = data.draw(st.integers(0, q - 1))
    c = data.draw(st.integers(0, q - 1))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.sub(f.add(a, b), b) == a
    if b != 0:
        assert f.mul(f.div(a, b), b) == a
