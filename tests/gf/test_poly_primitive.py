"""Unit and property tests for repro.gf.poly and repro.gf.primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.gf import (
    GF,
    Poly,
    euler_phi,
    find_irreducible,
    find_primitive_polynomial,
    is_irreducible,
    is_primitive,
    polynomial_order,
    primitive_polynomial_coefficients,
)


def poly_from_ints(field, coeffs):
    return Poly(field, [c % field.order for c in coeffs])


class TestPolyBasics:
    def test_trailing_zeros_stripped(self):
        f = GF(5)
        p = Poly(f, (1, 2, 0, 0))
        assert p.coeffs == (1, 2)
        assert p.degree == 1

    def test_zero_polynomial(self):
        f = GF(3)
        z = Poly.zero(f)
        assert z.is_zero
        assert z.degree == -1

    def test_monomial_and_x(self):
        f = GF(3)
        assert Poly.x(f).coeffs == (0, 1)
        assert Poly.monomial(f, 3).coeffs == (0, 0, 0, 1)
        assert Poly.monomial(f, 2, 2).coeffs == (0, 0, 2)

    def test_invalid_coefficient_rejected(self):
        f = GF(3)
        with pytest.raises(InvalidParameterError):
            Poly(f, (3,))

    def test_immutability(self):
        f = GF(3)
        p = Poly.one(f)
        with pytest.raises(AttributeError):
            p.coeffs = (2,)

    def test_getitem_beyond_degree(self):
        f = GF(3)
        p = Poly(f, (1, 2))
        assert p[5] == 0

    def test_characteristic_roundtrip(self):
        f = GF(5)
        rec = (3, 0, 2)
        p = Poly.from_characteristic(f, rec)
        assert p.degree == 3
        assert p.is_monic
        assert p.recurrence_coefficients() == rec

    def test_recurrence_coefficients_requires_monic(self):
        f = GF(5)
        with pytest.raises(InvalidParameterError):
            Poly(f, (1, 2)).scale(2).recurrence_coefficients()


class TestPolyArithmetic:
    def test_add_sub(self):
        f = GF(5)
        a = Poly(f, (1, 2, 3))
        b = Poly(f, (4, 3, 2))
        assert (a + b).coeffs == ()  # (5,5,5) -> zero polynomial
        assert (a - a).is_zero

    def test_mul_known(self):
        f = GF(2)
        # (x+1)^2 = x^2 + 1 over GF(2)
        a = Poly(f, (1, 1))
        assert (a * a).coeffs == (1, 0, 1)

    def test_divmod_reconstructs(self):
        f = GF(7)
        a = Poly(f, (3, 1, 4, 1, 5))
        b = Poly(f, (2, 0, 1))
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_division_by_zero(self):
        f = GF(3)
        with pytest.raises(ZeroDivisionError):
            Poly.one(f).divmod(Poly.zero(f))

    def test_gcd_known(self):
        f = GF(2)
        # gcd(x^2+1, x+1) = x+1 over GF(2) since x^2+1=(x+1)^2
        a = Poly(f, (1, 0, 1))
        b = Poly(f, (1, 1))
        assert a.gcd(b) == b

    def test_gcd_coprime(self):
        f = GF(3)
        a = Poly(f, (1, 0, 1))  # x^2+1, irreducible over GF(3)
        b = Poly(f, (1, 1))
        assert a.gcd(b).degree == 0

    def test_pow_mod(self):
        f = GF(5)
        modulus = Poly(f, (2, 1, 1))
        x = Poly.x(f)
        manual = Poly.one(f)
        for _ in range(13):
            manual = (manual * x) % modulus
        assert x.pow_mod(13, modulus) == manual

    def test_evaluate(self):
        f = GF(7)
        p = Poly(f, (1, 2, 3))  # 1 + 2x + 3x^2
        for x in range(7):
            assert p.evaluate(x) == (1 + 2 * x + 3 * x * x) % 7

    def test_evaluate_extension_field(self):
        f = GF(4)
        p = Poly(f, (1, 1))  # x + 1
        for x in range(4):
            assert p.evaluate(x) == f.add(x, 1)

    def test_derivative(self):
        f = GF(3)
        p = Poly(f, (1, 2, 1, 1))  # 1 + 2x + x^2 + x^3
        # derivative: 2 + 2x + 3x^2 = 2 + 2x over GF(3)
        assert p.derivative().coeffs == (2, 2)

    def test_mixed_fields_rejected(self):
        with pytest.raises(InvalidParameterError):
            Poly.one(GF(3)) + Poly.one(GF(5))

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from([2, 3, 5, 4, 9]), st.data())
    def test_ring_axioms_random(self, q, data):
        f = GF(q)
        coeffs = st.lists(st.integers(0, q - 1), min_size=0, max_size=5)
        a = Poly(f, data.draw(coeffs))
        b = Poly(f, data.draw(coeffs))
        c = Poly(f, data.draw(coeffs))
        assert a + b == b + a
        assert a * b == b * a
        assert a * (b + c) == a * b + a * c
        if not b.is_zero:
            q_, r_ = a.divmod(b)
            assert q_ * b + r_ == a


class TestIrreducibility:
    def test_known_irreducible_gf2(self):
        f = GF(2)
        assert is_irreducible(Poly(f, (1, 1, 1)))      # x^2+x+1
        assert is_irreducible(Poly(f, (1, 1, 0, 1)))   # x^3+x+1
        assert not is_irreducible(Poly(f, (1, 0, 1)))  # x^2+1=(x+1)^2

    def test_known_irreducible_gf3(self):
        f = GF(3)
        assert is_irreducible(Poly(f, (1, 0, 1)))       # x^2+1
        assert not is_irreducible(Poly(f, (2, 0, 1)))   # x^2+2 = x^2-1

    def test_degree_one_always_irreducible(self):
        f = GF(5)
        for a in range(5):
            assert is_irreducible(Poly(f, (a, 1)))

    def test_constants_not_irreducible(self):
        f = GF(5)
        assert not is_irreducible(Poly.one(f))
        assert not is_irreducible(Poly.zero(f))

    def test_find_irreducible_has_right_degree(self):
        for q in [2, 3, 4, 5, 9]:
            for deg in [1, 2, 3]:
                p = find_irreducible(GF(q), deg)
                assert p.degree == deg
                assert is_irreducible(p)

    def test_irreducible_count_gf2_degree4(self):
        # there are exactly 3 monic irreducible polynomials of degree 4 over GF(2)
        f = GF(2)
        count = 0
        for v in range(16):
            coeffs = [(v >> i) & 1 for i in range(4)] + [1]
            if is_irreducible(Poly(f, coeffs)):
                count += 1
        assert count == 3


class TestPrimitivity:
    def test_paper_example_3_1(self):
        # p(x) = x^2 - x - 3 is primitive over GF(5)
        f = GF(5)
        p = Poly.from_characteristic(f, (3, 1))  # x^2 - 1x - 3
        assert is_primitive(p)
        assert polynomial_order(p) == 24

    def test_paper_example_3_2(self):
        # x^2 - x - z is primitive over GF(4) where z is a generator
        f = GF(4, modulus=(1, 1, 1))
        z = 2
        p = Poly.from_characteristic(f, (z, 1))
        assert is_primitive(p)
        assert polynomial_order(p) == 15

    def test_x3_x_1_primitive_gf2(self):
        # Example 3.6 uses c_{i+3} = c_{i+2} + c_i, i.e. x^3 - x^2 - 1
        f = GF(2)
        p = Poly.from_characteristic(f, (1, 0, 1))
        assert is_primitive(p)

    def test_irreducible_but_not_primitive(self):
        # x^2 + 1 over GF(3) is irreducible with order 4 != 8
        f = GF(3)
        p = Poly(f, (1, 0, 1))
        assert is_irreducible(p)
        assert polynomial_order(p) == 4
        assert not is_primitive(p)

    def test_polynomial_order_divides_group_order(self):
        for q, deg in [(2, 3), (2, 4), (3, 2), (5, 2), (4, 2)]:
            field = GF(q)
            p = find_irreducible(field, deg)
            order = polynomial_order(p)
            assert (q**deg - 1) % order == 0

    def test_polynomial_order_rejects_x_divisible(self):
        f = GF(3)
        with pytest.raises(InvalidParameterError):
            polynomial_order(Poly(f, (0, 1, 1)))

    def test_find_primitive_polynomial(self):
        for q, deg, period in [(2, 3, 7), (2, 4, 15), (3, 2, 8), (5, 2, 24), (4, 2, 15)]:
            p = find_primitive_polynomial(GF(q), deg)
            assert p.degree == deg
            assert is_primitive(p)
            assert polynomial_order(p) == period

    def test_primitive_polynomial_count_gf2_degree4(self):
        # phi(15)/4 = 2 primitive polynomials of degree 4 over GF(2)
        f = GF(2)
        count = 0
        for v in range(16):
            coeffs = [(v >> i) & 1 for i in range(4)] + [1]
            if is_primitive(Poly(f, coeffs)):
                count += 1
        assert count == euler_phi(15) // 4

    def test_primitive_polynomial_coefficients_cached_wrapper(self):
        coeffs = primitive_polynomial_coefficients(5, 2)
        assert len(coeffs) == 2
        f = GF(5)
        assert is_primitive(Poly.from_characteristic(f, coeffs))

    def test_find_primitive_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            find_primitive_polynomial(GF(3), 0)
