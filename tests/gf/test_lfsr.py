"""Unit and property tests for repro.gf.lfsr (shift-register sequences)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.gf import (
    GF,
    AffineRecurrence,
    LinearRecurrence,
    default_maximal_cycle_recurrence,
    maximal_cycle,
    sequence_period,
    shifted_cycle,
)


def windows(seq, n):
    """All length-n circular windows of a sequence."""
    k = len(seq)
    return [tuple(seq[(i + j) % k] for j in range(n)) for i in range(k)]


class TestAffineRecurrence:
    def test_paper_example_3_1_sequence(self):
        # s_{2+i} = s_{1+i} + 3 s_i over GF(5), s0=0, s1=1 gives the maximal
        # cycle [0,1,1,4,2,4,0,2,2,3,4,3,0,4,4,1,3,1,0,3,3,2,1,2]
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        seq = rec.sequence((0, 1), 24)
        assert seq == [0, 1, 1, 4, 2, 4, 0, 2, 2, 3, 4, 3, 0, 4, 4, 1, 3, 1, 0, 3, 3, 2, 1, 2]

    def test_next_digit_matches_sequence(self):
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        seq = rec.sequence((0, 1), 30)
        for i in range(28):
            assert rec.next_digit(seq[i : i + 2]) == seq[i + 2]

    def test_window_length_checked(self):
        f = GF(3)
        rec = LinearRecurrence(f, (1, 1))
        with pytest.raises(InvalidParameterError):
            rec.next_digit((1,))

    def test_invalid_coefficients_rejected(self):
        f = GF(3)
        with pytest.raises(InvalidParameterError):
            AffineRecurrence(f, (3, 1))
        with pytest.raises(InvalidParameterError):
            AffineRecurrence(f, (), 0)

    def test_coefficient_sum_omega(self):
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        assert rec.coefficient_sum == 4  # omega = 3 + 1

    def test_shifted_recurrence_lemma_3_2(self):
        # the shifted sequence s + C satisfies the affine recurrence with
        # constant s*(1 - omega)
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        base = rec.sequence((0, 1), 24)
        for s in range(5):
            shifted = shifted_cycle(base, s, f)
            affine = rec.shifted(s)
            expected_constant = f.mul(s, f.sub(1, rec.coefficient_sum))
            assert affine.constant == expected_constant
            regenerated = affine.sequence(shifted[:2], 24)
            assert regenerated == shifted

    def test_period_of_maximal_recurrence(self):
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        assert rec.period((0, 1)) == 24

    def test_period_of_zero_state_linear(self):
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        assert rec.period((0, 0)) == 1

    def test_period_bad_initial_length(self):
        f = GF(3)
        rec = LinearRecurrence(f, (1, 1))
        with pytest.raises(InvalidParameterError):
            rec.period((1,))

    def test_sequence_negative_length_rejected(self):
        f = GF(3)
        rec = LinearRecurrence(f, (1, 1))
        with pytest.raises(InvalidParameterError):
            rec.sequence((0, 1), -1)

    def test_characteristic_polynomial_roundtrip(self):
        f = GF(7)
        rec = LinearRecurrence(f, (2, 5, 1))
        assert rec.characteristic_polynomial().recurrence_coefficients() == (2, 5, 1)


class TestMaximalCycle:
    @pytest.mark.parametrize("d,n", [(2, 3), (2, 4), (2, 5), (3, 2), (3, 3), (4, 2), (5, 2), (7, 2), (8, 2), (9, 2), (13, 2)])
    def test_maximal_cycle_visits_all_nonzero_nodes_once(self, d, n):
        cycle = maximal_cycle(d, n)
        assert len(cycle) == d**n - 1
        nodes = windows(cycle, n)
        assert len(set(nodes)) == len(nodes)
        assert (0,) * n not in nodes

    def test_default_recurrence_is_primitive(self):
        from repro.gf import is_primitive

        rec = default_maximal_cycle_recurrence(4, 3)
        assert is_primitive(rec.characteristic_polynomial())

    def test_explicit_recurrence_accepted(self):
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        cycle = maximal_cycle(5, 2, recurrence=rec, initial=(0, 1))
        assert cycle == [0, 1, 1, 4, 2, 4, 0, 2, 2, 3, 4, 3, 0, 4, 4, 1, 3, 1, 0, 3, 3, 2, 1, 2]

    def test_mismatched_recurrence_rejected(self):
        f = GF(5)
        rec = LinearRecurrence(f, (3, 1))
        with pytest.raises(InvalidParameterError):
            maximal_cycle(5, 3, recurrence=rec)

    def test_non_primitive_recurrence_rejected(self):
        f = GF(3)
        # x^2 + 1 is irreducible but not primitive over GF(3)
        rec = LinearRecurrence(f, (2, 0))  # x^2 - 0x - 2 = x^2+1
        with pytest.raises(InvalidParameterError):
            maximal_cycle(3, 2, recurrence=rec)

    def test_zero_initial_state_rejected(self):
        with pytest.raises(InvalidParameterError):
            maximal_cycle(3, 2, initial=(0, 0))

    def test_affine_recurrence_rejected(self):
        f = GF(5)
        rec = AffineRecurrence(f, (3, 1), 2)
        with pytest.raises(InvalidParameterError):
            maximal_cycle(5, 2, recurrence=rec)


class TestShiftedCycle:
    def test_shift_by_zero_is_identity(self):
        f = GF(7)
        cycle = maximal_cycle(7, 2)
        assert shifted_cycle(cycle, 0, f) == cycle

    def test_shifts_are_cycles(self):
        # Lemma 3.1: the shift of a cycle is a cycle
        f = GF(5)
        cycle = maximal_cycle(5, 2)
        for s in range(5):
            shifted = shifted_cycle(cycle, s, f)
            nodes = windows(shifted, 2)
            assert len(set(nodes)) == len(nodes)

    def test_shifts_are_pairwise_edge_disjoint(self):
        # Lemma 3.3: the d shifted cycles are pairwise edge-disjoint
        for d, n in [(4, 2), (5, 2), (3, 3)]:
            f = GF(d)
            cycle = maximal_cycle(d, n)
            edge_sets = []
            for s in range(d):
                shifted = shifted_cycle(cycle, s, f)
                edge_sets.append(set(windows(shifted, n + 1)))
            for i in range(d):
                for j in range(i + 1, d):
                    assert not (edge_sets[i] & edge_sets[j])

    def test_shift_misses_exactly_s_to_the_n(self):
        # every node except s^n appears in s + C
        d, n = 5, 2
        f = GF(d)
        cycle = maximal_cycle(d, n)
        for s in range(d):
            nodes = set(windows(shifted_cycle(cycle, s, f), n))
            assert (s,) * n not in nodes
            assert len(nodes) == d**n - 1

    def test_invalid_shift_element(self):
        f = GF(5)
        with pytest.raises(InvalidParameterError):
            shifted_cycle([0, 1], 5, f)


class TestSequencePeriod:
    def test_examples(self):
        assert sequence_period([0, 1, 0, 1]) == 2
        assert sequence_period([1, 1, 1]) == 1
        assert sequence_period([0, 1, 2]) == 3

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            sequence_period([])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=12))
    def test_period_divides_length(self, seq):
        assert len(seq) % sequence_period(seq) == 0
