"""Unit and property tests for repro.gf.modular."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, NotPrimePowerError
from repro.gf import (
    as_prime_power,
    divisors,
    euler_phi,
    is_prime,
    is_prime_power,
    is_primitive_root,
    is_quadratic_residue,
    legendre_symbol,
    lemma_3_5_conditions,
    mobius,
    multiplicative_order,
    prime_factorization,
    prime_power_decomposition,
    primitive_root,
    primitive_roots,
    two_as_odd_power,
    two_as_odd_power_sum,
)

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
ODD_PRIMES = [p for p in SMALL_PRIMES if p != 2]


class TestPrimality:
    def test_small_primes(self):
        for p in SMALL_PRIMES:
            assert is_prime(p)

    def test_small_composites(self):
        for n in [0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 33, 35, 39]:
            assert not is_prime(n)

    def test_larger_values(self):
        assert is_prime(7919)
        assert not is_prime(7917)


class TestFactorization:
    def test_example(self):
        assert prime_factorization(360) == ((2, 3), (3, 2), (5, 1))

    def test_prime(self):
        assert prime_factorization(13) == ((13, 1),)

    def test_one(self):
        assert prime_factorization(1) == ()

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            prime_factorization(0)

    @given(st.integers(1, 10000))
    def test_product_reconstructs(self, n):
        prod = 1
        for p, e in prime_factorization(n):
            assert is_prime(p)
            prod *= p**e
        assert prod == n

    def test_prime_power_decomposition(self):
        assert prime_power_decomposition(360) == (8, 9, 5)
        assert prime_power_decomposition(6) == (2, 3)
        assert prime_power_decomposition(28) == (4, 7)

    def test_is_prime_power(self):
        for q in [2, 3, 4, 5, 7, 8, 9, 16, 25, 27, 32, 49]:
            assert is_prime_power(q)
        for n in [1, 6, 10, 12, 15, 24, 36]:
            assert not is_prime_power(n)

    def test_as_prime_power(self):
        assert as_prime_power(8) == (2, 3)
        assert as_prime_power(49) == (7, 2)
        with pytest.raises(NotPrimePowerError):
            as_prime_power(12)


class TestArithmeticFunctions:
    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(13) == [1, 13]

    @given(st.integers(1, 2000))
    def test_divisors_actually_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))

    def test_euler_phi_known(self):
        known = {1: 1, 2: 1, 3: 2, 4: 2, 5: 4, 6: 2, 9: 6, 10: 4, 12: 4, 36: 12}
        for n, phi in known.items():
            assert euler_phi(n) == phi

    @given(st.integers(1, 500))
    def test_euler_phi_matches_bruteforce(self, n):
        brute = sum(1 for k in range(1, n + 1) if math.gcd(k, n) == 1)
        assert euler_phi(n) == brute

    def test_mobius_known(self):
        known = {1: 1, 2: -1, 3: -1, 4: 0, 5: -1, 6: 1, 12: 0, 30: -1, 35: 1}
        for n, mu in known.items():
            assert mobius(n) == mu

    @given(st.integers(2, 300))
    def test_mobius_sum_over_divisors_is_zero(self, n):
        assert sum(mobius(d) for d in divisors(n)) == 0

    @given(st.integers(1, 300))
    def test_phi_equals_mobius_convolution(self, n):
        # phi(n) = sum_{d|n} mu(d) * n/d
        assert euler_phi(n) == sum(mobius(d) * (n // d) for d in divisors(n))


class TestMultiplicativeGroup:
    def test_multiplicative_order_known(self):
        assert multiplicative_order(2, 7) == 3
        assert multiplicative_order(3, 7) == 6
        assert multiplicative_order(7, 13) == 12

    def test_multiplicative_order_rejects_non_coprime(self):
        with pytest.raises(InvalidParameterError):
            multiplicative_order(6, 9)

    @given(st.sampled_from(ODD_PRIMES), st.data())
    def test_order_divides_group_order(self, p, data):
        a = data.draw(st.integers(1, p - 1))
        order = multiplicative_order(a, p)
        assert (p - 1) % order == 0
        assert pow(a, order, p) == 1

    def test_primitive_root_known(self):
        assert primitive_root(2) == 1
        assert primitive_root(3) == 2
        assert primitive_root(5) == 2
        assert primitive_root(7) == 3
        assert primitive_root(13) == 2

    def test_primitive_root_rejects_composite(self):
        with pytest.raises(InvalidParameterError):
            primitive_root(8)

    def test_7_is_primitive_root_of_13(self):
        # the paper's Example 3.3 uses lambda = 7 for Z_13
        assert is_primitive_root(7, 13)

    def test_primitive_roots_count(self):
        # number of primitive roots of p is phi(p-1)
        for p in ODD_PRIMES:
            assert len(primitive_roots(p)) == euler_phi(p - 1)

    @given(st.sampled_from(ODD_PRIMES))
    def test_primitive_root_generates_group(self, p):
        g = primitive_root(p)
        generated = {pow(g, k, p) for k in range(p - 1)}
        assert generated == set(range(1, p))


class TestQuadraticCharacter:
    def test_legendre_of_zero(self):
        assert legendre_symbol(0, 7) == 0
        assert legendre_symbol(14, 7) == 0

    def test_legendre_rejects_two(self):
        with pytest.raises(InvalidParameterError):
            legendre_symbol(3, 2)

    @given(st.sampled_from(ODD_PRIMES), st.data())
    def test_legendre_matches_bruteforce(self, p, data):
        a = data.draw(st.integers(1, p - 1))
        squares = {(x * x) % p for x in range(1, p)}
        expected = 1 if a in squares else -1
        assert legendre_symbol(a, p) == expected
        assert is_quadratic_residue(a, p) == (expected == 1)

    def test_two_is_nonresidue_iff_pm3_mod_8(self):
        # [Ros84, Theorem 9.4] as cited in the paper's Lemma 3.5 discussion
        for p in ODD_PRIMES:
            expected = p % 8 in (3, 5)
            assert (not is_quadratic_residue(2, p)) == expected


class TestLemma35:
    def test_paper_example_z13(self):
        # "when p is 13 both (a) and (b) are satisfied since 7 is a primitive
        #  root of Z13, and 2 = 7^11 = 7 + 7^9 (mod 13)"
        conds = lemma_3_5_conditions(13)
        assert conds["a"] and conds["b"]
        a_exp = two_as_odd_power(13, root=7)
        assert a_exp is not None and a_exp % 2 == 1
        pair = two_as_odd_power_sum(13, root=7)
        assert pair is not None
        A, B = pair
        assert A % 2 == 1 and B % 2 == 1
        assert (pow(7, A, 13) + pow(7, B, 13)) % 13 == 2

    def test_paper_example_z5(self):
        # "in Z5 only (a) is satisfied"
        conds = lemma_3_5_conditions(5)
        assert conds["a"] and not conds["b"]

    def test_lemma_3_5_holds_for_all_small_odd_primes(self):
        # Lemma 3.5: at least one of (a), (b) holds for every odd prime
        for p in [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]:
            conds = lemma_3_5_conditions(p)
            assert conds["a"] or conds["b"], p

    def test_condition_b_holds_for_pm1_mod_8(self):
        # sufficient condition stated in the paper
        for p in [7, 17, 23, 31, 41, 47]:
            assert p % 8 in (1, 7)
            assert lemma_3_5_conditions(p)["b"], p

    def test_two_as_odd_power_verifies(self):
        for p in [3, 5, 11, 13, 19, 29, 37]:
            exp = two_as_odd_power(p)
            if exp is not None:
                lam = primitive_root(p)
                assert exp % 2 == 1
                assert pow(lam, exp, p) == 2

    def test_two_as_odd_power_sum_verifies(self):
        for p in [7, 13, 17, 23, 29, 31, 37, 41]:
            pair = two_as_odd_power_sum(p)
            if pair is not None:
                lam = primitive_root(p)
                A, B = pair
                assert A % 2 == 1 and B % 2 == 1
                assert (pow(lam, A, p) + pow(lam, B, p)) % p == 2

    def test_rejects_p_equal_two(self):
        with pytest.raises(InvalidParameterError):
            two_as_odd_power(2)
        with pytest.raises(InvalidParameterError):
            two_as_odd_power_sum(2)

    def test_rejects_non_primitive_root(self):
        with pytest.raises(InvalidParameterError):
            two_as_odd_power(13, root=4)
