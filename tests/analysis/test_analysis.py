"""Tests for the experiment harness (Tables 2.1/2.2, registry, reporting)."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_FAULT_COUNTS,
    available_experiments,
    compare_hypercube_debruijn,
    format_fault_table,
    format_mapping_table,
    format_table,
    run_experiment,
    simulate_fault_row,
    simulate_fault_table,
)
from repro.exceptions import InvalidParameterError


class TestFaultSimulation:
    def test_zero_faults_row_is_exact(self):
        row = simulate_fault_row(2, 10, 0, trials=3, rng=np.random.default_rng(0))
        assert row.avg_size == row.max_size == row.min_size == 1024
        assert row.avg_ecc == row.max_ecc == row.min_ecc == 10
        assert row.reference_size == 1024

    def test_single_fault_row_b45(self):
        # every single fault in B(4,5) kills one aperiodic length-5 necklace,
        # except the 4 constant words (length-1 necklaces) and the 4+4+... short
        # ones; the dominant value is 1019, matching the paper's row
        row = simulate_fault_row(4, 5, 1, trials=30, rng=np.random.default_rng(1))
        assert row.reference_size == 1019
        assert 1019 <= row.max_size <= 1023
        assert row.min_size >= 1019

    def test_rows_track_reference_for_small_f(self):
        rows = simulate_fault_table(2, 10, fault_counts=(1, 2, 5), trials=15, seed=3)
        for row in rows:
            assert abs(row.avg_size - row.reference_size) <= 12
            assert row.min_size <= row.avg_size <= row.max_size
            assert row.min_ecc <= row.avg_ecc <= row.max_ecc

    def test_root_fallback_used_when_root_necklace_dies(self):
        # force the fault onto the root's own necklace
        row = simulate_fault_row(
            2, 6, 1, trials=1, rng=np.random.default_rng(0), root=(0, 0, 0, 0, 0, 1)
        )
        assert row.max_size > 0  # some surviving root was found regardless

    def test_paper_fault_counts_constant(self):
        assert PAPER_FAULT_COUNTS == tuple(range(11)) + (20, 30, 40, 50)

    def test_invalid_trials(self):
        with pytest.raises(InvalidParameterError):
            simulate_fault_row(2, 5, 1, trials=0)

    def test_seeded_tables_are_reproducible(self):
        a = simulate_fault_table(2, 6, fault_counts=(2,), trials=5, seed=9)
        b = simulate_fault_table(2, 6, fault_counts=(2,), trials=5, seed=9)
        assert a[0] == b[0]


class TestHypercubeComparison:
    def test_paper_headline_numbers(self):
        cmp = compare_hypercube_debruijn(trials=2, seed=0)
        assert cmp.nodes == 4096
        assert cmp.hypercube_cycle_bound == 4092
        assert cmp.debruijn_cycle_bound == 4084
        assert cmp.hypercube_edges == 24576
        assert cmp.debruijn_edges == 16384
        assert cmp.debruijn_cycle_worst_case == 4084
        assert cmp.debruijn_cycle_random_avg >= 4084
        assert len(cmp.as_rows()) == 5

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            compare_hypercube_debruijn(n_cube=10, d=4, n=6)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_fault_table_contains_columns(self):
        rows = simulate_fault_table(2, 5, fault_counts=(0, 1), trials=2, seed=0)
        text = format_fault_table(rows, title="T")
        assert "Avg. Size" in text and "d^n - nf" in text and text.startswith("T")

    def test_format_mapping_table(self):
        text = format_mapping_table({2: 1, 3: 1, 4: 3}, "d", "psi(d)")
        assert "psi(d)" in text and "3" in text


class TestRegistry:
    def test_available_experiments_cover_all_tables_and_figures(self):
        names = available_experiments()
        for required in [
            "table_2_1", "table_2_2", "table_3_1", "table_3_2",
            "figure_1_graphs", "figure_2_ffc_example", "figure_3_3_decomposition",
            "hypercube_comparison", "chapter_4_examples", "disjoint_hc_summary",
        ]:
            assert required in names

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table_9_9")

    @pytest.mark.parametrize(
        "name", ["table_3_1", "table_3_2", "figure_1_graphs", "figure_2_ffc_example", "chapter_4_examples"]
    )
    def test_cheap_experiments_run(self, name):
        description, text = run_experiment(name)
        assert description
        assert text.strip()

    def test_table_2_2_experiment_accepts_trials(self):
        description, text = run_experiment("table_2_2", trials=2, seed=1)
        assert "B(4,5)" in description
        assert "1019" in text


class TestFaultSweepRunnerValidation:
    def test_measure_rejects_wrong_length_faults(self):
        from repro.analysis import FaultSweepRunner

        runner = FaultSweepRunner(2, 6)
        with pytest.raises(InvalidParameterError):
            runner.measure([(1, 0, 1)])  # length 3 in B(2, 6)

    def test_measure_rejects_out_of_alphabet_faults(self):
        from repro.analysis import FaultSweepRunner
        from repro.exceptions import AlphabetError

        runner = FaultSweepRunner(2, 6)
        with pytest.raises(AlphabetError):
            runner.measure([(0, 0, 0, 0, 0, 3)])

    def test_measure_matches_run_trial_statistics(self):
        from repro.analysis import FaultSweepRunner

        runner = FaultSweepRunner(3, 4)
        size, ecc = runner.measure([(0, 1, 2, 2)])
        assert size == 3**4 - 4  # one aperiodic necklace removed
        assert ecc >= 4

    def test_runner_rejects_wrong_length_root(self):
        from repro.analysis import FaultSweepRunner

        with pytest.raises(InvalidParameterError):
            FaultSweepRunner(2, 6, root=(1, 0, 1))
        with pytest.raises(InvalidParameterError):
            FaultSweepRunner(2, 6, root=(1,) * 7)
