"""Batched-vs-scalar equivalence of the fault-sweep runner (ISSUE 3).

``FaultSweepRunner.run_trials_batch`` must be bit-for-bit identical to
per-trial ``run_trial`` calls on the same seed streams — in particular in
the *root-fallback regime*: trials where the measurement root ``R`` lands
in a faulty necklace and the paper's neighbouring-root rule (with the
multi-candidate largest-component / smallest-code tie-break of
``_measurement_root``) decides the measurement, and the all-nodes-removed
``(0, 0)`` edge case.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fault_simulation import FaultSweepRunner
from repro.engine.sweep import trial_seed_sequences
from repro.graphs.msbfs import pack_fault_lanes


def _scalar_results(runner, f, seqs):
    return [runner.run_trial(f, np.random.default_rng(seq)) for seq in seqs]


@settings(max_examples=40, deadline=None)
@given(
    d=st.integers(2, 3),
    n=st.integers(3, 4),
    f_fraction=st.floats(0.0, 1.0),
    seed=st.integers(0, 10_000),
    batch=st.integers(1, 64),
)
def test_batched_equals_scalar_property(d, n, f_fraction, seed, batch):
    """Random (d, n, f, seed, batch): batched == scalar, trial for trial."""
    runner = FaultSweepRunner(d, n)
    f = int(f_fraction * d**n)  # spans 0 .. all-nodes-faulty
    seqs = trial_seed_sequences(seed, (f,), batch)[0]
    assert runner.run_trials_batch(f, seqs) == _scalar_results(runner, f, seqs)


class TestRootFallbackRegime:
    def test_fallback_trials_occur_and_agree(self):
        """With f = total/2 the root necklace dies often; every trial agrees."""
        from repro.network.faults import sample_node_fault_codes

        runner = FaultSweepRunner(2, 4)
        f = 8
        peeled = 0
        for seed in range(30):
            seqs = trial_seed_sequences(seed, (f,), 16)[0]
            assert runner.run_trials_batch(f, seqs) == _scalar_results(runner, f, seqs)
            for seq in seqs:
                trial_codes = sample_node_fault_codes(
                    2, 4, f, np.random.default_rng(seq)
                )
                removed = runner.codec.faulty_necklace_mask(
                    np.asarray(trial_codes, dtype=runner.codec.dtype)
                )
                if removed[runner.root_code]:
                    peeled += 1
        assert peeled > 0, "fault rate failed to exercise the fallback regime"

    def test_multi_candidate_tie_break_matches_scalar(self):
        """Crafted masks with several tied nearest candidates: batch == scalar.

        In B(2, 4), killing R's necklace {0001, 0010, 0100, 1000} leaves the
        two distance-1 survivors 0000 and 0011 as tied candidates; extra
        necklaces make the tie configurations more varied.
        """
        runner = FaultSweepRunner(2, 4)
        codec = runner.codec
        fault_sets = [
            [1],            # R's necklace only: candidates 0000 and 0011
            [1, 3],         # also kill {0011, 0110, 1100, 1001}
            [1, 0],         # also kill the loop necklace {0000}
            [1, 5],         # also kill {0101, 1010}
            [1, 3, 5],      # heavy damage, root and many neighbours dead
            [1, 0, 3, 5],
        ]
        codes = np.asarray([fs + [fs[0]] * (4 - len(fs)) for fs in fault_sets])
        # rectangular batch via repetition: duplicated faults remove the same
        # necklaces, so each row's mask is exactly its fault set's mask
        lanes = pack_fault_lanes(codec, codes)
        results = runner.executor._batched_fallbacks(lanes, list(range(len(fault_sets))))
        for t, fs in enumerate(fault_sets):
            removed = codec.faulty_necklace_mask(np.asarray(fs, dtype=codec.dtype))
            assert removed[runner.root_code], "crafted mask must kill the root"
            assert results[t] == runner.measure_mask(removed), fs

    def test_all_nodes_removed_yields_zero_zero(self):
        """f = d**n removes every node: every trial reports (0, 0)."""
        runner = FaultSweepRunner(2, 3)
        seqs = trial_seed_sequences(0, (8,), 20)[0]
        results = runner.run_trials_batch(8, seqs)
        assert results == [(0, 0)] * 20
        assert results == _scalar_results(runner, 8, seqs)

    def test_batch_size_validation(self):
        runner = FaultSweepRunner(2, 3)
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            runner.run_trials_batch(1, [])
        with pytest.raises(InvalidParameterError):
            runner.run_trials_batch(1, trial_seed_sequences(0, (1,), 65)[0])


def test_custom_root_batched_equals_scalar():
    runner = FaultSweepRunner(2, 5, root=(1, 0, 1, 0, 1))
    for f in (0, 2, 16, 31):
        seqs = trial_seed_sequences(9, (f,), 32)[0]
        assert runner.run_trials_batch(f, seqs) == _scalar_results(runner, f, seqs)
