"""Unit and property tests for repro.words.rotation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.words import (
    all_rotations,
    aperiodic_root,
    concatenation_power,
    distinct_rotations,
    is_aperiodic,
    min_rotation,
    min_rotation_index,
    period,
    rotate_left,
    rotate_left_int,
    rotate_right,
    rotate_right_int,
    word_to_int,
)

words = st.integers(2, 5).flatmap(
    lambda d: st.lists(st.integers(0, d - 1), min_size=1, max_size=12).map(tuple)
)


class TestRotateBasics:
    def test_paper_example(self):
        # Section 4.1: pi^2(0001) = 0100
        assert rotate_left((0, 0, 0, 1), 2) == (0, 1, 0, 0)

    def test_rotate_left_one(self):
        assert rotate_left((1, 1, 2, 0)) == (1, 2, 0, 1)

    def test_rotate_right_inverts_left(self):
        w = (0, 1, 2, 2, 1)
        assert rotate_right(rotate_left(w, 3), 3) == w

    def test_rotate_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            rotate_left(())

    def test_rotation_by_length_is_identity(self):
        w = (0, 1, 0, 1, 1)
        assert rotate_left(w, len(w)) == w

    @given(words, st.integers(-20, 20), st.integers(-20, 20))
    def test_rotations_compose_additively(self, w, i, j):
        assert rotate_left(rotate_left(w, i), j) == rotate_left(w, i + j)


class TestPeriod:
    def test_aperiodic_word(self):
        assert period((0, 1, 1, 2)) == 4
        assert is_aperiodic((0, 1, 1, 2))

    def test_constant_word_period_one(self):
        assert period((3, 3, 3, 3)) == 1

    def test_half_period(self):
        assert period((0, 1, 0, 1)) == 2
        assert not is_aperiodic((0, 1, 0, 1))

    def test_period_divides_length(self):
        # loop over every binary word up to length 8
        for n in range(1, 9):
            for v in range(2**n):
                w = tuple((v >> i) & 1 for i in range(n))
                assert n % period(w) == 0

    @given(words)
    def test_period_divides_length_property(self, w):
        assert len(w) % period(w) == 0

    @given(words)
    def test_rotation_by_period_is_identity(self, w):
        assert rotate_left(w, period(w)) == w

    @given(words, st.integers(2, 4))
    def test_concatenation_power_period(self, w, k):
        root = aperiodic_root(w)
        assert period(concatenation_power(root, k)) == len(root)

    @given(words)
    def test_aperiodic_root_reconstructs_word(self, w):
        root = aperiodic_root(w)
        assert is_aperiodic(root)
        assert concatenation_power(root, len(w) // len(root)) == w

    def test_concatenation_power_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            concatenation_power((0, 1), 0)


class TestRotationSets:
    def test_all_rotations_length(self):
        assert len(all_rotations((0, 1, 0, 1))) == 4

    def test_distinct_rotations_collapse_periodic(self):
        assert distinct_rotations((0, 1, 0, 1)) == [(0, 1, 0, 1), (1, 0, 1, 0)]

    @given(words)
    def test_distinct_rotation_count_is_period(self, w):
        rots = distinct_rotations(w)
        assert len(rots) == period(w)
        assert len(set(rots)) == len(rots)

    @given(words)
    def test_distinct_rotations_subset_of_all(self, w):
        assert set(distinct_rotations(w)) == set(all_rotations(w))


class TestMinRotation:
    def test_paper_necklace_example(self):
        # N(1120) = [0112]
        assert min_rotation((1, 1, 2, 0)) == (0, 1, 1, 2)

    def test_already_minimal(self):
        assert min_rotation((0, 0, 1)) == (0, 0, 1)

    def test_constant(self):
        assert min_rotation((2, 2, 2)) == (2, 2, 2)

    @given(words)
    def test_matches_bruteforce(self, w):
        assert min_rotation(w) == min(all_rotations(w))

    @given(words)
    def test_min_rotation_index_within_period(self, w):
        idx = min_rotation_index(w)
        assert 0 <= idx < period(w)
        assert rotate_left(w, idx) == min_rotation(w)

    @given(words)
    def test_min_rotation_is_numeric_minimum(self, w):
        d = max(w) + 1 if max(w) > 0 else 2
        best = min(all_rotations(w), key=lambda r: word_to_int(r, d))
        assert word_to_int(min_rotation(w), d) == word_to_int(best, d)


class TestIntRotation:
    @given(st.integers(2, 5), st.integers(1, 8), st.data())
    def test_matches_tuple_rotation(self, d, n, data):
        from repro.words import int_to_word

        value = data.draw(st.integers(0, d**n - 1))
        i = data.draw(st.integers(0, 3 * n))
        w = int_to_word(value, d, n)
        assert rotate_left_int(value, d, n, i) == word_to_int(rotate_left(w, i), d)

    def test_zero_rotation_identity(self):
        assert rotate_left_int(42, 3, 4, 0) == 42


class TestDegenerateInputs:
    """Regression tests for the edge-case hardening of the rotation layer."""

    def test_rotation_by_any_multiple_of_n_is_identity(self):
        w = (0, 1, 1, 0, 2)
        for k in (-3, -1, 0, 1, 2, 10):
            assert rotate_left(w, k * len(w)) == w
            assert rotate_right(w, k * len(w)) == w

    @given(words, st.integers(-30, 30))
    def test_left_right_inverse_law(self, w, i):
        assert rotate_right(rotate_left(w, i), i) == w
        assert rotate_left(rotate_right(w, i), i) == w

    @given(words, st.integers(-30, 30), st.integers(-30, 30))
    def test_right_rotations_compose_additively(self, w, i, j):
        assert rotate_right(rotate_right(w, i), j) == rotate_right(w, i + j)

    def test_length_one_words(self):
        assert rotate_left((4,), 3) == (4,)
        assert rotate_right((4,), -7) == (4,)
        assert period((4,)) == 1
        assert is_aperiodic((4,))
        assert min_rotation_index((4,)) == 0
        assert distinct_rotations((4,)) == [(4,)]
        assert aperiodic_root((4,)) == (4,)

    def test_unary_alphabet_words(self):
        # words over Z_1 are all-zero; every rotation fixes them
        w = (0, 0, 0)
        assert rotate_left(w, 2) == w
        assert min_rotation(w) == w
        assert period(w) == 1
        assert rotate_left_int(0, 1, 3, 2) == 0
        assert rotate_right_int(0, 1, 3, 5) == 0

    def test_concatenation_power_rejects_empty_word(self):
        with pytest.raises(InvalidParameterError):
            concatenation_power((), 3)


class TestIntRotationHardening:
    def test_rotate_left_int_rejects_out_of_range_value(self):
        with pytest.raises(InvalidParameterError):
            rotate_left_int(8, 2, 3, 1)  # valid codes are 0..7
        with pytest.raises(InvalidParameterError):
            rotate_left_int(-1, 2, 3, 1)

    def test_rotate_left_int_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            rotate_left_int(0, 0, 3, 1)
        with pytest.raises(InvalidParameterError):
            rotate_left_int(0, 2, 0, 1)

    def test_rotation_by_multiples_of_n_int(self):
        assert rotate_left_int(42, 3, 4, 4) == 42
        assert rotate_left_int(42, 3, 4, -4) == 42
        assert rotate_left_int(42, 3, 4, 8) == 42

    @given(st.integers(2, 5), st.integers(1, 8), st.data())
    def test_right_int_inverts_left_int(self, d, n, data):
        value = data.draw(st.integers(0, d**n - 1))
        i = data.draw(st.integers(-2 * n, 2 * n))
        assert rotate_right_int(rotate_left_int(value, d, n, i), d, n, i) == value

    @given(st.integers(2, 5), st.integers(1, 8), st.data())
    def test_rotate_right_int_matches_tuple(self, d, n, data):
        from repro.words import int_to_word

        value = data.draw(st.integers(0, d**n - 1))
        i = data.draw(st.integers(0, 3 * n))
        w = int_to_word(value, d, n)
        assert rotate_right_int(value, d, n, i) == word_to_int(rotate_right(w, i), d)
