"""Unit and property tests for repro.words.necklaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.words import (
    Necklace,
    all_necklaces,
    all_words,
    faulty_necklaces,
    iter_necklace_representatives,
    min_rotation,
    necklace_lengths_histogram,
    necklace_of,
    necklace_partition,
)

small_dn = st.tuples(st.integers(2, 4), st.integers(1, 6))


class TestNecklaceClass:
    def test_paper_example_N1120(self):
        # Section 2.1: N(1120) = [0112] = (1120, 1201, 2011, 0112)
        nk = necklace_of((1, 1, 2, 0), 3)
        assert nk.representative == (0, 1, 1, 2)
        assert nk.nodes == ((1, 1, 2, 0), (1, 2, 0, 1), (2, 0, 1, 1), (0, 1, 1, 2))
        assert len(nk) == 4

    def test_short_necklace(self):
        nk = necklace_of((0, 1, 0, 1), 2)
        assert len(nk) == 2
        assert nk.node_set == {(0, 1, 0, 1), (1, 0, 1, 0)}

    def test_loop_necklace(self):
        nk = necklace_of((2, 2, 2), 3)
        assert len(nk) == 1
        assert nk.nodes == ((2, 2, 2),)

    def test_equality_and_hash(self):
        a = necklace_of((1, 2, 0, 1), 3)
        b = necklace_of((0, 1, 1, 2), 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_ordering_by_representative(self):
        a = necklace_of((0, 0, 1), 2)
        b = necklace_of((0, 1, 1), 2)
        assert a < b

    def test_direct_construction_requires_minimal_representative(self):
        with pytest.raises(InvalidParameterError):
            Necklace((1, 0, 0), 2)

    def test_contains(self):
        nk = necklace_of((0, 1, 1, 2), 3)
        assert (2, 0, 1, 1) in nk
        assert (0, 0, 0, 0) not in nk
        assert "not a word" not in nk

    def test_successor_in_necklace_is_left_rotation(self):
        nk = necklace_of((0, 1, 1, 2), 3)
        assert nk.successor_in_necklace((1, 1, 2, 0)) == (1, 2, 0, 1)

    def test_successor_of_loop_node_is_itself(self):
        nk = necklace_of((1, 1, 1), 2)
        assert nk.successor_in_necklace((1, 1, 1)) == (1, 1, 1)

    def test_successor_rejects_non_member(self):
        nk = necklace_of((0, 1, 1), 2)
        with pytest.raises(InvalidParameterError):
            nk.successor_in_necklace((0, 0, 0))

    def test_nodes_end_at_representative(self):
        nk = necklace_of((0, 0, 1, 1), 2)
        assert nk.nodes[-1] == nk.representative

    def test_contains_any(self):
        nk = necklace_of((0, 1, 1), 2)
        assert nk.contains_any([(0, 0, 0), (1, 1, 0)])
        assert not nk.contains_any([(0, 0, 0)])


class TestEnumeration:
    @pytest.mark.parametrize(
        "d,n,expected",
        [
            (2, 1, 2),
            (2, 2, 3),
            (2, 3, 4),
            (2, 4, 6),
            (2, 5, 8),
            (2, 6, 14),
            (3, 3, 11),
            (3, 4, 24),
            (4, 3, 24),
        ],
    )
    def test_necklace_counts_known_values(self, d, n, expected):
        # classical necklace counts (OEIS A000031 for d=2, A001867 for d=3, ...)
        assert len(all_necklaces(d, n)) == expected

    @given(small_dn)
    @settings(max_examples=25, deadline=None)
    def test_representatives_are_minimal_and_sorted(self, dn):
        d, n = dn
        reps = list(iter_necklace_representatives(d, n))
        assert reps == sorted(reps)
        for rep in reps:
            assert rep == min_rotation(rep)

    @given(small_dn)
    @settings(max_examples=25, deadline=None)
    def test_necklaces_partition_all_words(self, dn):
        d, n = dn
        seen = set()
        for nk in all_necklaces(d, n):
            members = nk.node_set
            assert not (members & seen)
            seen |= members
        assert seen == set(all_words(d, n))

    @given(small_dn)
    @settings(max_examples=25, deadline=None)
    def test_necklace_lengths_divide_n(self, dn):
        d, n = dn
        for nk in all_necklaces(d, n):
            assert n % len(nk) == 0

    def test_partition_mapping_consistent(self):
        part = necklace_partition(3, 3)
        assert len(part) == 27
        for word, nk in part.items():
            assert word in nk
            assert nk == necklace_of(word, 3)

    def test_histogram_sums_to_word_count(self):
        hist = necklace_lengths_histogram(2, 6)
        assert sum(length * count for length, count in hist.items()) == 2**6
        assert sum(hist.values()) == len(all_necklaces(2, 6))

    def test_histogram_b33(self):
        # B(3,3): 3 loop necklaces of length 1, 8 of length 3
        assert necklace_lengths_histogram(3, 3) == {1: 3, 3: 8}


class TestFaultyNecklaces:
    def test_paper_example_2_1(self):
        # Example 2.1: faults 020 and 112 in B(3,3)
        faulty = faulty_necklaces([(0, 2, 0), (1, 1, 2)], 3)
        reps = {nk.representative for nk in faulty}
        assert reps == {(0, 0, 2), (1, 1, 2)}
        # together they cover 6 nodes, leaving 21 fault-free nodes
        covered = set()
        for nk in faulty:
            covered |= nk.node_set
        assert len(covered) == 6

    def test_multiple_faults_same_necklace(self):
        faulty = faulty_necklaces([(0, 1, 1), (1, 1, 0)], 2)
        assert len(faulty) == 1

    def test_no_faults(self):
        assert faulty_necklaces([], 2) == set()
