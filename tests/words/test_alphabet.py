"""Unit and property tests for repro.words.alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import AlphabetError, InvalidParameterError
from repro.words import (
    all_words,
    alternating_word,
    constant_word,
    int_to_word,
    iter_words,
    letter_count,
    random_word,
    validate_alphabet,
    validate_word,
    weight,
    word_to_int,
    words_as_array,
)


class TestValidation:
    def test_validate_alphabet_accepts_small_sizes(self):
        assert validate_alphabet(2) == 2
        assert validate_alphabet(13) == 13

    def test_validate_alphabet_rejects_one(self):
        with pytest.raises(InvalidParameterError):
            validate_alphabet(1)

    def test_validate_alphabet_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            validate_alphabet(True)

    def test_validate_alphabet_rejects_non_int(self):
        with pytest.raises(InvalidParameterError):
            validate_alphabet(2.5)

    def test_validate_word_accepts_valid(self):
        assert validate_word([1, 1, 2, 0], 3) == (1, 1, 2, 0)

    def test_validate_word_rejects_out_of_range_digit(self):
        with pytest.raises(AlphabetError):
            validate_word((0, 3), 3)

    def test_validate_word_rejects_negative_digit(self):
        with pytest.raises(AlphabetError):
            validate_word((0, -1), 3)

    def test_validate_word_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            validate_word((), 3)


class TestEncoding:
    def test_paper_example_1120(self):
        # the node 1120 of B(3,4) used in Section 2.1
        assert word_to_int((1, 1, 2, 0), 3) == 42
        assert int_to_word(42, 3, 4) == (1, 1, 2, 0)

    def test_zero_word(self):
        assert word_to_int((0, 0, 0), 5) == 0
        assert int_to_word(0, 5, 3) == (0, 0, 0)

    def test_max_word(self):
        assert word_to_int((4, 4, 4), 5) == 124
        assert int_to_word(124, 5, 3) == (4, 4, 4)

    def test_int_to_word_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            int_to_word(8, 2, 3)
        with pytest.raises(InvalidParameterError):
            int_to_word(-1, 2, 3)

    @given(st.integers(2, 6), st.integers(1, 6), st.data())
    def test_roundtrip_random(self, d, n, data):
        value = data.draw(st.integers(0, d**n - 1))
        assert word_to_int(int_to_word(value, d, n), d) == value

    @given(st.integers(2, 6), st.integers(1, 6), st.data())
    def test_roundtrip_word_side(self, d, n, data):
        word = tuple(data.draw(st.integers(0, d - 1)) for _ in range(n))
        assert int_to_word(word_to_int(word, d), d, n) == word


class TestEnumeration:
    def test_iter_words_count_and_order(self):
        words = list(iter_words(2, 3))
        assert len(words) == 8
        assert words[0] == (0, 0, 0)
        assert words[-1] == (1, 1, 1)
        assert words == sorted(words)

    def test_all_words_matches_iter(self):
        assert all_words(3, 2) == list(iter_words(3, 2))

    def test_iter_words_numeric_order(self):
        for i, w in enumerate(iter_words(3, 3)):
            assert word_to_int(w, 3) == i

    def test_iter_words_rejects_bad_length(self):
        with pytest.raises(InvalidParameterError):
            list(iter_words(2, 0))

    def test_words_as_array_matches_tuples(self):
        arr = words_as_array(3, 3)
        assert arr.shape == (27, 3)
        for i, w in enumerate(iter_words(3, 3)):
            assert tuple(int(x) for x in arr[i]) == w

    def test_words_as_array_dtype_large_alphabet(self):
        arr = words_as_array(300, 1)
        assert arr.dtype == np.int64
        assert arr.shape == (300, 1)


class TestHelpers:
    def test_weight_and_letter_count_paper_example(self):
        # Section 2.1: x = 1120 -> wt=4, wt0=1, wt1=2, wt2=1
        x = (1, 1, 2, 0)
        assert weight(x) == 4
        assert letter_count(x, 0) == 1
        assert letter_count(x, 1) == 2
        assert letter_count(x, 2) == 1

    def test_constant_word(self):
        assert constant_word(3, 4) == (3, 3, 3, 3)
        with pytest.raises(InvalidParameterError):
            constant_word(1, 0)

    def test_alternating_word_even_odd(self):
        assert alternating_word(1, 0, 4) == (1, 0, 1, 0)
        assert alternating_word(1, 0, 5) == (1, 0, 1, 0, 1)

    def test_random_word_respects_alphabet(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            w = random_word(4, 6, rng)
            assert len(w) == 6
            assert all(0 <= x < 4 for x in w)

    def test_random_word_deterministic_with_seed(self):
        a = random_word(4, 6, np.random.default_rng(123))
        b = random_word(4, 6, np.random.default_rng(123))
        assert a == b


class TestEncodingHardening:
    """Regression tests for degenerate-input handling in the encoders."""

    def test_word_to_int_rejects_empty_word(self):
        with pytest.raises(InvalidParameterError):
            word_to_int((), 3)

    def test_word_to_int_rejects_out_of_alphabet_digits(self):
        with pytest.raises(AlphabetError):
            word_to_int((5, 1), 3)
        with pytest.raises(AlphabetError):
            word_to_int((-1, 0), 2)

    def test_word_to_int_accepts_unary_alphabet(self):
        assert word_to_int((0, 0, 0), 1) == 0

    def test_word_to_int_rejects_nonpositive_alphabet(self):
        with pytest.raises(InvalidParameterError):
            word_to_int((0,), 0)

    def test_int_to_word_rejects_nonpositive_length(self):
        with pytest.raises(InvalidParameterError):
            int_to_word(0, 3, 0)
        with pytest.raises(InvalidParameterError):
            int_to_word(0, 3, -1)

    def test_int_to_word_accepts_unary_alphabet(self):
        assert int_to_word(0, 1, 4) == (0, 0, 0, 0)
        with pytest.raises(InvalidParameterError):
            int_to_word(1, 1, 4)

    def test_unary_round_trip(self):
        for n in (1, 2, 5):
            assert word_to_int(int_to_word(0, 1, n), 1) == 0

    def test_round_trip_length_one(self):
        for d in (2, 3, 7):
            for v in range(d):
                assert word_to_int(int_to_word(v, d, 1), d) == v
