"""Tests for the integer-coded word kernel (repro.words.codec)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.words import (
    WordCodec,
    get_codec,
    int_to_word,
    min_rotation,
    necklace_of,
    period,
    rotate_left,
    word_to_int,
)
from repro.words.necklaces import iter_necklace_representatives


class TestTables:
    @pytest.mark.parametrize("d,n", [(2, 1), (2, 6), (3, 4), (5, 3)])
    def test_tables_match_tuple_functions(self, d, n):
        codec = get_codec(d, n)
        for value in range(codec.size):
            w = int_to_word(value, d, n)
            assert codec.rotate1[value] == word_to_int(rotate_left(w), d)
            assert codec.rep[value] == word_to_int(min_rotation(w), d)
            assert codec.periods[value] == period(w)

    def test_tables_are_read_only(self):
        codec = get_codec(2, 4)
        with pytest.raises(ValueError):
            codec.rotate1[0] = 1
        with pytest.raises(ValueError):
            codec.successor_table[0, 0] = 1

    def test_necklace_reps_match_fkm_enumeration(self):
        for d, n in [(2, 6), (3, 4)]:
            codec = get_codec(d, n)
            expected = [word_to_int(r, d) for r in iter_necklace_representatives(d, n)]
            assert codec.necklace_reps().tolist() == expected

    def test_necklace_members_traversal_order(self):
        codec = get_codec(3, 4)
        rep = word_to_int((0, 1, 1, 2), 3)
        members = codec.necklace_members(rep)
        nk = necklace_of((0, 1, 1, 2), 3)
        # starting from the representative, rotations visit the necklace
        assert set(members) == {word_to_int(w, 3) for w in nk.node_set}
        assert len(members) == len(nk)


class TestScalarOps:
    @given(st.integers(2, 5), st.integers(1, 8), st.data())
    def test_encode_decode_round_trip(self, d, n, data):
        codec = get_codec(d, n)
        value = data.draw(st.integers(0, codec.size - 1))
        assert codec.encode(codec.decode(value)) == value

    @given(st.integers(2, 4), st.integers(2, 7), st.data())
    def test_split_helpers(self, d, n, data):
        codec = get_codec(d, n)
        value = data.draw(st.integers(0, codec.size - 1))
        w = codec.decode(value)
        assert codec.suffix(value) == word_to_int(w[1:], d)
        assert codec.prefix(value) == word_to_int(w[:-1], d)
        assert codec.first_digit(value) == w[0]
        assert codec.last_digit(value) == w[-1]

    @given(st.integers(2, 4), st.integers(1, 7), st.data())
    def test_debruijn_moves(self, d, n, data):
        codec = get_codec(d, n)
        value = data.draw(st.integers(0, codec.size - 1))
        a = data.draw(st.integers(0, d - 1))
        w = codec.decode(value)
        assert codec.successor(value, a) == word_to_int(w[1:] + (a,), d)
        assert codec.predecessor(value, a) == word_to_int((a,) + w[:-1], d)

    @given(st.integers(2, 4), st.integers(1, 7), st.data())
    def test_rotate_arbitrary_amounts(self, d, n, data):
        codec = get_codec(d, n)
        value = data.draw(st.integers(0, codec.size - 1))
        i = data.draw(st.integers(-3 * n, 3 * n))
        assert codec.rotate(value, i) == word_to_int(rotate_left(codec.decode(value), i), d)


class TestVectorized:
    def test_encode_many_round_trip(self):
        codec = get_codec(3, 4)
        words = [(0, 1, 1, 2), (2, 0, 1, 1), (0, 0, 0, 0)]
        codes = codec.encode_many(words)
        assert codec.decode_many(codes) == words

    def test_encode_many_rejects_bad_words(self):
        codec = get_codec(3, 4)
        with pytest.raises(InvalidParameterError):
            codec.encode_many([(0, 1)])  # wrong length
        with pytest.raises(InvalidParameterError):
            codec.encode_many([(0, 1, 2, 5)])  # digit outside Z_3

    def test_encode_many_empty(self):
        codec = get_codec(3, 4)
        assert codec.encode_many([]).size == 0

    def test_faulty_necklace_mask_matches_necklace_expansion(self):
        codec = get_codec(3, 4)
        faults = [(0, 1, 1, 2), (2, 2, 2, 2)]
        mask = codec.faulty_necklace_mask(codec.encode_many(faults))
        expected = np.zeros(codec.size, dtype=bool)
        for f in faults:
            for member in necklace_of(f, 3).node_set:
                expected[word_to_int(member, 3)] = True
        assert np.array_equal(mask, expected)

    def test_faulty_necklace_mask_empty(self):
        codec = get_codec(2, 5)
        assert not codec.faulty_necklace_mask([]).any()

    def test_faulty_necklace_mask_rejects_out_of_range(self):
        codec = get_codec(2, 5)
        with pytest.raises(InvalidParameterError):
            codec.faulty_necklace_mask([codec.size])


class TestCaching:
    def test_get_codec_returns_shared_instance(self):
        assert get_codec(2, 5) is get_codec(2, 5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            WordCodec(1, 3)
        with pytest.raises(InvalidParameterError):
            WordCodec(2, 0)

    def test_dtype_choice(self):
        assert get_codec(2, 10).rotate1.dtype == np.int32
