"""Engine-level tests: suppressions, baseline, selection, JSON report."""

import json

import pytest

from repro.exceptions import InvalidParameterError
from repro.lint import (
    JSON_SCHEMA_VERSION,
    Finding,
    lint_paths,
    lint_source,
    load_baseline,
    parse_codes,
)
from repro.lint.rules import all_rules

ASSERT_SNIPPET = "def f(x):\n    assert x\n    return x\n"


class TestNoqa:
    def test_bare_noqa_suppresses_every_rule(self):
        source = "def f(x):\n    assert x  # repro: noqa\n    return x\n"
        result = lint_source(source, path="src/repro/x.py")
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["REP006"]

    def test_coded_noqa_suppresses_only_listed_rules(self):
        source = "def f(x):\n    assert x  # repro: noqa[REP006]\n    return x\n"
        result = lint_source(source, path="src/repro/x.py")
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_noqa_for_other_rule_does_not_suppress(self):
        source = "def f(x):\n    assert x  # repro: noqa[REP001]\n    return x\n"
        result = lint_source(source, path="src/repro/x.py")
        assert [f.rule for f in result.findings] == ["REP006"]

    def test_multi_code_noqa(self):
        source = (
            "import numpy as np\n"
            "def f(x):\n"
            "    assert np.random.rand(x)  # repro: noqa[REP002, REP006]\n"
        )
        result = lint_source(source, path="src/repro/x.py")
        assert result.findings == []
        assert {f.rule for f in result.suppressed} == {"REP002", "REP006"}

    def test_suppressed_findings_do_not_gate(self):
        source = "def f(x):\n    assert x  # repro: noqa\n    return x\n"
        result = lint_source(source, path="src/repro/x.py")
        assert result.active == []


class TestBaseline:
    def test_baselined_finding_does_not_gate(self):
        probe = lint_source(ASSERT_SNIPPET, path="src/repro/x.py")
        key = probe.findings[0].key
        result = lint_source(ASSERT_SNIPPET, path="src/repro/x.py", baseline={key})
        assert result.findings == []
        assert [f.key for f in result.baselined] == [key]
        assert result.active == []

    def test_baseline_is_exact_on_path_line_rule(self):
        result = lint_source(
            ASSERT_SNIPPET, path="src/repro/x.py",
            baseline={"src/repro/x.py:999:REP006"},
        )
        assert len(result.findings) == 1  # wrong line: still gates

    def test_load_baseline_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "schema_version": 1,
            "entries": ["src/repro/x.py:2:REP006"],
        }))
        assert load_baseline(path) == {"src/repro/x.py:2:REP006"}

    def test_load_baseline_rejects_malformed_documents(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(InvalidParameterError):
            load_baseline(path)
        path.write_text(json.dumps({"entries": [1, 2]}))
        with pytest.raises(InvalidParameterError):
            load_baseline(path)


class TestSelection:
    def test_parse_codes_accepts_repeated_and_comma_separated(self):
        assert parse_codes(["REP001,REP002", "rep006"]) == {
            "REP001", "REP002", "REP006",
        }

    def test_parse_codes_rejects_garbage(self):
        with pytest.raises(InvalidParameterError):
            parse_codes(["REP1"])
        with pytest.raises(InvalidParameterError):
            parse_codes(["E501"])

    def test_select_runs_only_listed_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nassert np.random.rand(3)\n")
        result = lint_paths([bad], select={"REP002"})
        assert {f.rule for f in result.findings} == {"REP002"}

    def test_ignore_drops_listed_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nassert np.random.rand(3)\n")
        result = lint_paths([bad], ignore={"REP006"})
        assert {f.rule for f in result.findings} == {"REP002"}

    def test_unknown_code_raises(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\n")
        with pytest.raises(InvalidParameterError, match="REP999"):
            lint_paths([bad], select={"REP999"})


class TestParseErrors:
    def test_syntax_error_becomes_rep000(self):
        result = lint_source("def broken(:\n", path="src/repro/x.py")
        assert [f.rule for f in result.parse_errors] == ["REP000"]
        assert result.active  # parse failures always gate

    def test_rep000_cannot_be_noqa_suppressed(self):
        result = lint_source("def broken(:  # repro: noqa\n", path="src/repro/x.py")
        assert result.active


class TestJsonReport:
    def test_schema_version_and_layout(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(ASSERT_SNIPPET)
        rules = all_rules()
        doc = lint_paths([bad], rules=rules).as_dict(rules)
        assert doc["schema_version"] == JSON_SCHEMA_VERSION == 1
        assert doc["tool"] == "repro.lint"
        assert doc["files"] == 1
        assert set(doc["rules"]) == {r.code for r in rules}
        assert doc["statistics"] == {"REP006": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        json.dumps(doc)  # must be serialisable as-is

    def test_statistics_counts_per_rule(self):
        source = "import numpy as np\nassert np.random.rand(3)\nassert True\n"
        result = lint_source(source, path="src/repro/x.py")
        assert result.statistics() == {"REP002": 1, "REP006": 2}


class TestFindingIdentity:
    def test_key_and_render(self):
        f = Finding("REP006", "src/repro/x.py", 2, 5, "raw assert")
        assert f.key == "src/repro/x.py:2:REP006"
        assert f.render() == "src/repro/x.py:2:5: REP006 raw assert"


class TestLintPaths:
    def test_directory_recursion_and_ordering(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text(ASSERT_SNIPPET)
        (tmp_path / "a.py").write_text(ASSERT_SNIPPET)
        result = lint_paths([tmp_path])
        assert result.files == 2
        assert [f.path for f in result.findings] == sorted(
            f.path for f in result.findings
        )

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="no such file"):
            lint_paths([tmp_path / "missing"])
