"""REP004 true positives: kernel calls / table reads outside the executor.

Must be linted under a virtual path *not* in the rule's allow-list, e.g.
``src/repro/analysis/fixture.py``.
"""

from repro.graphs.msbfs import batched_root_stats, pack_fault_lanes


def rogue_measurement(levels, roots, lanes):
    packed = pack_fault_lanes(lanes)
    return batched_root_stats(levels, roots, packed)


def rogue_table_read(codec, alive):
    return codec.predecessor_table[alive]
