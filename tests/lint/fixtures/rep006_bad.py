"""REP006 true positives: raw asserts in library code."""


def guarded(value):
    assert value is not None, "value required"
    return value


class Lifecycle:
    def __init__(self):
        self._server = None

    @property
    def address(self):
        assert self._server is not None, "not started"
        return self._server
