"""REP001 true positives: unbounded / unregistered caches.

Linted under a virtual ``src/repro/...`` path by ``tests/lint/test_rules.py``.
"""

import functools
from functools import lru_cache


@functools.cache
def unbounded_cache(n):
    return n * n


@lru_cache
def bare_decorator(n):
    return n + 1


@lru_cache(maxsize=None)
def explicitly_unbounded(n):
    return n - 1


@lru_cache(maxsize=64)
def bounded_but_unregistered(n):
    return 2 * n
