"""REP002 true positives: unseeded / global-state randomness."""

import numpy as np


def unseeded_fallback(rng=None):
    return rng if rng is not None else np.random.default_rng()


def legacy_global_draw(n):
    return np.random.rand(n)


def legacy_global_shuffle(items):
    np.random.shuffle(items)
    return items
