"""REP005 true negatives: async-safe idioms and sync-context blocking."""

import asyncio
import time


async def handler(loop, work):
    # blocking work explicitly pushed off the event loop
    return await loop.run_in_executor(None, work)


async def paced():
    await asyncio.sleep(0.1)


def sync_helper(path):
    # blocking calls are fine outside async def
    time.sleep(0.01)
    with open(path) as fh:
        return fh.read()
