"""REP002 true negatives: every stream descends from an explicit seed."""

import numpy as np


def seeded(seed):
    return np.random.default_rng(seed)


def from_seed_sequence(seed, spawn_key):
    ss = np.random.SeedSequence(seed, spawn_key=spawn_key)
    return np.random.default_rng(ss)


def typed_generator(rng: np.random.Generator):
    return rng.random()


def explicit_bit_generator(seed):
    return np.random.Generator(np.random.PCG64(seed))
