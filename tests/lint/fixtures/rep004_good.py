"""REP004 true negatives: measurements routed through the executor."""


def measured_via_executor(executor, request):
    return executor.measure(request)


def harmless_attribute(codec):
    # not a gather-table attribute: fine anywhere
    return codec.alphabet_size
