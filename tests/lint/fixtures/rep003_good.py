"""REP003 true negatives: double-checked locking and non-lazy patterns."""

import threading


class LockedLazyTables:
    def __init__(self):
        self._lock = threading.RLock()
        self._table = None

    @property
    def table(self):
        if self._table is None:
            with self._lock:
                if self._table is None:
                    self._table = self._build()
        return self._table

    def _build(self):
        return [1, 2, 3]


class NotLazyInit:
    def __init__(self):
        # assignment in __init__ before any sharing: not a lazy-init test
        self._table = [0]

    def reset(self, flusher):
        # compound test (`or`): asyncio single-thread idiom, not lazy init
        if flusher is None or flusher.done():
            flusher = object()
        return flusher
