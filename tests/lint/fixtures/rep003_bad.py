"""REP003 true positives: lazy shared-state init without a lock.

Must be linted under a server-reachable virtual path, e.g.
``src/repro/words/fixture.py``.
"""


class BareLazyTables:
    def __init__(self):
        self._table = None
        self._other = None

    @property
    def table(self):
        if self._table is None:
            self._table = self._build()  # racy: no lock held
        return self._table

    def other(self):
        if self._other is None:
            rows = self._build()
            self._other = rows  # racy even via a temporary
        return self._other

    def _build(self):
        return [1, 2, 3]
