"""REP001 true negatives: bounded caches registered with the audit."""

from functools import lru_cache

from repro.engine.caches import register_cache


@lru_cache(maxsize=128)
def bounded_and_registered(n):
    return n * n


@lru_cache(maxsize=1024)
def also_registered(n):
    return n + 1


def undecorated(n):
    return n  # plain function: no cache, nothing to register


register_cache("fixture.bounded_and_registered", bounded_and_registered)
register_cache("fixture.also_registered", also_registered)
