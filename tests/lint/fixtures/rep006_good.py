"""REP006 true negatives: typed exceptions instead of assert."""

from repro.exceptions import InvalidParameterError, ServerStateError


def guarded(value):
    if value is None:
        raise InvalidParameterError("value required")
    return value


class Lifecycle:
    def __init__(self):
        self._server = None

    @property
    def address(self):
        if self._server is None:
            raise ServerStateError("not started")
        return self._server
