"""REP005 true positives: blocking calls on the event loop.

Must be linted under a ``src/repro/server/`` virtual path.
"""

import subprocess
import time


async def handler(request):
    time.sleep(0.1)  # blocks every coalesced request
    return request


async def spawn(cmd):
    return subprocess.run(cmd)


async def read_config(path):
    with open(path) as fh:
        return fh.read()
