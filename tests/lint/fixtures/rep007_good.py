"""REP007 true negatives: timing observed through repro.obs, or no timing.

Locals may hold perf_counter readings (that is how a span is measured);
only *instance-attribute* accumulation is the registry's job.
"""

import time


class Gateway:
    def __init__(self, histogram, counter):
        self._wait_seconds = histogram  # a repro.obs Histogram child
        self._requests = counter
        self._tags = []

    def handle(self, request):
        started = time.perf_counter()
        response = self.dispatch(request)
        # observing into a registry histogram is the sanctioned sink
        self._wait_seconds.observe(time.perf_counter() - started)
        self._requests.inc()
        return response

    def label(self, request):
        # appending non-timing data to instance state is fine
        self._tags.append(request.topology)
        return request

    def best_of(self, repeats):
        # bench-style local accumulation never touches self
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            self.dispatch(None)
            best = min(best, time.perf_counter() - started)
        return best

    def count(self, results):
        # += on self with an untainted value is not an accumulator
        self._done = getattr(self, "_done", 0)
        self._done += len(results)
        return self._done

    def dispatch(self, request):
        return request
