"""REP007 true positives: hand-rolled timing accumulators on ``self``.

Must be linted under a ``src/repro/server/`` or ``src/repro/engine/``
virtual path.  These are the three shapes PR 7 removed from live code.
"""

import time


class Gateway:
    def __init__(self):
        self._latencies = []
        self._total_latency = 0.0

    def handle(self, request):
        started = time.perf_counter()
        response = self.dispatch(request)
        # unbounded, lock-free, invisible to /metrics
        self._total_latency += time.perf_counter() - started
        self._latencies.append(time.perf_counter() - started)
        return response

    def handle_indirect(self, request):
        started = time.perf_counter()
        response = self.dispatch(request)
        elapsed = time.perf_counter() - started
        wait = elapsed  # taint flows through renames too
        self._latencies.append(wait)
        return response

    def dispatch(self, request):
        return request
