"""Tests for the ``python -m repro lint`` command surface."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

BAD = FIXTURES / "rep006_bad.py"
GOOD = FIXTURES / "rep006_good.py"


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main(["lint", str(GOOD)]) == 0
        err = capsys.readouterr().err
        assert "0 finding(s) in 1 file(s)" in err

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(BAD)]) == 1
        out = capsys.readouterr().out
        assert "REP006" in out and "rep006_bad.py" in out


class TestTableFormat:
    def test_renders_path_line_col_rule(self, capsys):
        main(["lint", str(BAD)])
        first = capsys.readouterr().out.splitlines()[0]
        path, line, col, rest = first.split(":", 3)
        assert path.endswith("rep006_bad.py")
        assert int(line) > 0 and int(col) > 0
        assert rest.strip().startswith("REP006")

    def test_statistics_flag_prints_per_rule_counts(self, capsys):
        main(["lint", str(BAD), "--statistics"])
        err = capsys.readouterr().err
        assert "REP006 no-raw-assert" in err
        assert "REP001 bounded-registered-cache" in err  # zero rows included


class TestJsonFormat:
    def test_document_shape(self, capsys):
        assert main(["lint", str(BAD), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert doc["statistics"] == {"REP006": 2}
        assert all(f["rule"] == "REP006" for f in doc["findings"])

    def test_clean_document(self, capsys):
        assert main(["lint", str(GOOD), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == [] and doc["files"] == 1


class TestSelection:
    def test_select_limits_rules(self, capsys):
        assert main(["lint", str(BAD), "--select", "REP001"]) == 0
        assert main(["lint", str(BAD), "--select", "REP001,REP006"]) == 1

    def test_ignore_drops_rules(self, capsys):
        assert main(["lint", str(BAD), "--ignore", "REP006"]) == 0


class TestBaselineFlag:
    def test_baseline_grandfathers_findings(self, capsys, tmp_path):
        main(["lint", str(BAD), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        keys = [f"{f['path']}:{f['line']}:{f['rule']}" for f in doc["findings"]]
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"schema_version": 1, "entries": keys}))
        assert main(["lint", str(BAD), "--baseline", str(baseline)]) == 0
        err = capsys.readouterr().err
        assert "2 baselined" in err
