"""Fixture-driven rule tests: every REP rule has true positives and negatives.

Each fixture under ``tests/lint/fixtures/`` is linted *as source* under a
virtual ``src/repro/...`` path (the :func:`repro.lint.lint_source` API), so
path-scoped rules (REP003/REP004/REP005) see the package they guard without
the snippets living there.
"""

from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: rule -> (virtual path the snippets are linted under, expected bad count)
CASES = {
    # 1 @functools.cache, 2 for bare @lru_cache (bare + unregistered),
    # 2 for maxsize=None (unbounded + unregistered), 1 bounded-unregistered
    "REP001": ("src/repro/gf/fixture.py", 6),
    "REP002": ("src/repro/network/fixture.py", 3),
    "REP003": ("src/repro/words/fixture.py", 2),
    "REP004": ("src/repro/analysis/fixture.py", 3),
    "REP005": ("src/repro/server/fixture.py", 3),
    "REP006": ("src/repro/core/fixture.py", 2),
    # += accumulator, direct append, rename-chained append
    "REP007": ("src/repro/server/fixture.py", 3),
}


def lint_fixture(name: str, virtual_path: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, path=virtual_path)


class TestTruePositives:
    @pytest.mark.parametrize("rule", sorted(CASES))
    def test_bad_fixture_is_flagged(self, rule):
        virtual, _ = CASES[rule]
        result = lint_fixture(f"{rule.lower()}_bad.py", virtual)
        codes = {f.rule for f in result.findings}
        assert rule in codes, f"{rule} missed its bad fixture entirely"

    @pytest.mark.parametrize("rule", sorted(CASES))
    def test_bad_fixture_finding_count(self, rule):
        virtual, expected = CASES[rule]
        result = lint_fixture(f"{rule.lower()}_bad.py", virtual)
        hits = [f for f in result.findings if f.rule == rule]
        assert len(hits) == expected, [f.render() for f in hits]

    def test_findings_carry_location_and_message(self):
        virtual, _ = CASES["REP006"]
        result = lint_fixture("rep006_bad.py", virtual)
        f = next(f for f in result.findings if f.rule == "REP006")
        assert f.path == virtual
        assert f.line > 0 and f.col > 0
        assert "assert" in f.message


class TestTrueNegatives:
    @pytest.mark.parametrize("rule", sorted(CASES))
    def test_good_fixture_is_clean(self, rule):
        virtual, _ = CASES[rule]
        result = lint_fixture(f"{rule.lower()}_good.py", virtual)
        hits = [f for f in result.findings if f.rule == rule]
        assert hits == [], [f.render() for f in hits]


class TestPathScoping:
    """Path-scoped rules must stay silent outside the packages they guard."""

    def test_rep003_ignores_unshared_packages(self):
        result = lint_fixture("rep003_bad.py", "src/repro/gf/fixture.py")
        assert not any(f.rule == "REP003" for f in result.findings)

    def test_rep004_allows_the_executor_itself(self):
        result = lint_fixture("rep004_bad.py", "src/repro/engine/executor.py")
        assert not any(f.rule == "REP004" for f in result.findings)

    def test_rep004_allows_topology_table_builders(self):
        result = lint_fixture("rep004_bad.py", "src/repro/topology/debruijn.py")
        assert not any(f.rule == "REP004" for f in result.findings)

    def test_rep005_only_applies_to_server(self):
        result = lint_fixture("rep005_bad.py", "src/repro/analysis/fixture.py")
        assert not any(f.rule == "REP005" for f in result.findings)

    def test_rep007_only_applies_to_server_and_engine(self):
        result = lint_fixture("rep007_bad.py", "src/repro/analysis/fixture.py")
        assert not any(f.rule == "REP007" for f in result.findings)

    def test_rep007_allows_the_registry_itself(self):
        # repro.obs is the one place allowed to hold raw timing state —
        # even though it sits behind the server import graph
        result = lint_fixture("rep007_bad.py", "src/repro/obs/fixture.py")
        assert not any(f.rule == "REP007" for f in result.findings)


class TestRuleEdgeCases:
    def test_rep001_non_constant_maxsize_is_accepted(self):
        source = (
            "from functools import lru_cache\n"
            "from repro.engine.caches import register_cache\n"
            "LIMIT = 32\n"
            "@lru_cache(maxsize=LIMIT)\n"
            "def f(n):\n"
            "    return n\n"
            "register_cache('x.f', f)\n"
        )
        result = lint_source(source, path="src/repro/gf/x.py")
        assert not any(f.rule == "REP001" for f in result.findings)

    def test_rep002_seeded_default_rng_with_keyword(self):
        source = "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
        result = lint_source(source, path="src/repro/x.py")
        assert not any(f.rule == "REP002" for f in result.findings)

    def test_rep003_lock_in_outer_scope_is_not_credited(self):
        # a `with lock` in the *enclosing* function does not protect a
        # lazy build inside a nested function (it may run later, unlocked)
        source = (
            "class C:\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            def inner():\n"
            "                if self._t is None:\n"
            "                    self._t = 1\n"
            "            return inner\n"
        )
        result = lint_source(source, path="src/repro/words/x.py")
        assert any(f.rule == "REP003" for f in result.findings)

    def test_rep004_flags_method_style_kernel_calls(self):
        source = "def f(mod, levels, roots):\n    return mod.batched_root_stats(levels, roots)\n"
        result = lint_source(source, path="src/repro/analysis/x.py")
        assert any(f.rule == "REP004" for f in result.findings)

    def test_rep004_table_store_is_not_flagged(self):
        # only Load contexts are measurements; builders assign the attribute
        source = "def f(self, t):\n    self.successor_table = t\n"
        result = lint_source(source, path="src/repro/analysis/x.py")
        assert not any(f.rule == "REP004" for f in result.findings)

    def test_rep005_nested_sync_def_inside_async_is_clean(self):
        source = (
            "import time\n"
            "async def handler():\n"
            "    def worker():\n"
            "        time.sleep(1)\n"
            "    return worker\n"
        )
        result = lint_source(source, path="src/repro/server/x.py")
        assert not any(f.rule == "REP005" for f in result.findings)
