"""Meta-tests: the tree itself is lint-clean, and regressions are caught.

These are the tests the CI ``analysis`` job leans on: ``repro lint src``
must be clean with an *empty* baseline at HEAD, and deliberately
reintroducing either of the two bug classes this PR fixed (the unseeded
RNG fallback in ``network/faults.py``; a kernel call bypassing the
:class:`~repro.engine.executor.KernelExecutor`) must produce findings.
"""

from pathlib import Path

from repro.cli import main
from repro.lint import lint_paths, lint_source, load_baseline

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


class TestTreeIsClean:
    def test_lint_src_is_clean_without_baseline(self):
        result = lint_paths([SRC])
        assert result.active == [], [f.render() for f in result.active]
        assert result.files > 50  # the whole tree was audited, not a subset

    def test_cli_entry_point_is_clean(self, capsys):
        assert main(["lint", str(SRC)]) == 0

    def test_committed_baseline_is_empty(self):
        # the acceptance bar: violations were fixed, not grandfathered
        assert load_baseline(REPO / "lint-baseline.json") == set()


class TestRegressionsAreCaught:
    def test_reintroduced_unseeded_rng_fallback_is_caught(self):
        path = SRC / "repro" / "network" / "faults.py"
        source = path.read_text(encoding="utf-8")
        assert "rng = _require_rng(rng)" in source  # the fix is in place
        mutated = source.replace(
            "rng = _require_rng(rng)",
            "rng = rng if rng is not None else np.random.default_rng()",
            1,
        )
        result = lint_source(mutated, path=path.as_posix())
        assert any(f.rule == "REP002" for f in result.findings)

    def test_reintroduced_executor_bypass_is_caught(self):
        path = SRC / "repro" / "engine" / "sweep.py"
        source = path.read_text(encoding="utf-8")
        mutated = source + (
            "\n\ndef _rogue_dispatch(levels, roots, lanes):\n"
            "    packed = pack_fault_lanes(lanes)\n"
            "    return batched_root_stats(levels, roots, packed)\n"
        )
        result = lint_source(mutated, path=path.as_posix())
        assert {f.rule for f in result.findings} >= {"REP004"}

    def test_reintroduced_raw_assert_is_caught(self):
        path = SRC / "repro" / "server" / "gateway.py"
        source = path.read_text(encoding="utf-8")
        mutated = source.replace(
            'raise ServerStateError("gateway not started: call start() before address")',
            'assert self._server is not None, "gateway not started"',
            1,
        )
        assert mutated != source
        result = lint_source(mutated, path=path.as_posix())
        assert any(f.rule == "REP006" for f in result.findings)

    def test_reintroduced_adhoc_latency_accumulator_is_caught(self):
        # PR 7 moved the gateway's latency list into a repro.obs Histogram;
        # growing a raw reservoir back must trip REP007
        path = SRC / "repro" / "server" / "gateway.py"
        source = path.read_text(encoding="utf-8")
        assert "_obs_request_seconds" in source  # the registry-backed fix
        mutated = source + (
            "\n\nclass _RogueStats:\n"
            "    def __init__(self):\n"
            "        self._latencies = []\n"
            "    def record(self, started):\n"
            "        import time\n"
            "        self._latencies.append(time.perf_counter() - started)\n"
        )
        result = lint_source(mutated, path=path.as_posix())
        assert any(f.rule == "REP007" for f in result.findings)

    def test_unlocking_codec_lazy_build_is_caught(self):
        path = SRC / "repro" / "words" / "codec.py"
        source = path.read_text(encoding="utf-8")
        result = lint_source(source, path=path.as_posix())
        assert not any(f.rule == "REP003" for f in result.findings)
        mutated = source.replace("with self._tables_lock:", "if True:")
        assert mutated != source
        result = lint_source(mutated, path=path.as_posix())
        assert any(f.rule == "REP003" for f in result.findings)
