"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so ``pip install -e . --no-use-pep517`` works on minimal environments
whose setuptools predates self-contained PEP 660 editable installs (no
``wheel`` package available); normal ``pip install -e .`` ignores this file's
presence beyond using it as the legacy entry point.
"""

from setuptools import setup

setup()
