#!/usr/bin/env python3
"""Edge failures: disjoint Hamiltonian cycles and fault-free Hamiltonian rings.

Chapter 3 of the paper handles *link* failures.  This example:

1. constructs psi(d) pairwise edge-disjoint Hamiltonian cycles of B(8, 2)
   (Strategy 1, optimal: d - 1 = 7 of them);
2. fails max(psi(d)-1, varphi(d)) links and recovers a Hamiltonian ring that
   avoids all of them (Propositions 3.3/3.4);
3. lifts a fault-free Hamiltonian ring to the wrapped butterfly F(3, 2)
   (Proposition 3.5).

Run:  python examples/edge_fault_rings.py
"""

import numpy as np

from repro.core import (
    disjoint_hamiltonian_cycles,
    edge_fault_tolerance,
    edges_of_sequence,
    find_edge_fault_free_hc,
    is_hamiltonian_sequence,
    psi,
    verify_pairwise_disjoint,
)
from repro.core.edge_faults import butterfly_edge_fault_free_hc
from repro.graphs import ButterflyGraph
from repro.network import sample_edge_faults


def main() -> None:
    d, n = 8, 2
    cycles = disjoint_hamiltonian_cycles(d, n)
    print(f"B({d},{n}): constructed {len(cycles)} disjoint Hamiltonian cycles "
          f"(psi({d}) = {psi(d)}, upper bound d-1 = {d - 1})")
    print(f"  pairwise edge-disjoint and Hamiltonian: "
          f"{verify_pairwise_disjoint(cycles, d, n)}")

    tolerance = edge_fault_tolerance(d)
    rng = np.random.default_rng(2024)
    faults = sample_edge_faults(d, n, tolerance, rng)
    print(f"\nFailing {tolerance} links (the guaranteed tolerance for d={d}):")
    for label in faults:
        print(f"  edge {''.join(map(str, label[:-1]))} -> {''.join(map(str, label[1:]))}")

    ring = find_edge_fault_free_hc(d, n, faults, strict=True)
    used = set(edges_of_sequence(ring, n))
    print(f"\nRecovered Hamiltonian ring of length {len(ring)}: "
          f"hamiltonian={is_hamiltonian_sequence(ring, d, n)}, "
          f"avoids all faults={not (used & set(faults))}")

    # butterfly extension (gcd(d, n) must be 1)
    bd, bn = 3, 2
    butterfly = ButterflyGraph(bd, bn)
    b_faults = [((0, (0, 1)), (1, (1, 1)))]
    b_ring = butterfly_edge_fault_free_hc(bd, bn, b_faults)
    print(f"\nButterfly F({bd},{bn}): lifted fault-free Hamiltonian ring of length "
          f"{len(b_ring)} (= n*d^n = {bn * bd**bn}); "
          f"valid={butterfly.is_hamiltonian_cycle(b_ring)}")


if __name__ == "__main__":
    main()
