#!/usr/bin/env python3
"""Run the *distributed* FFC protocol on the message-passing simulator (Section 2.4).

The paper's algorithm is a network-level protocol: every processor only talks
to its De Bruijn neighbours and the whole reconfiguration costs O(K + n)
communication steps (K = eccentricity of the root in the surviving
component).  This example executes the three protocol stages on the
synchronous simulator, reports the measured step counts, verifies the result
against the centralized algorithm, and finishes with the all-to-all broadcast
that motivates disjoint rings in Chapter 3.

Run:  python examples/distributed_reconfiguration.py
"""

from repro.core import disjoint_hamiltonian_cycles, find_fault_free_cycle, nodes_of_sequence
from repro.network import (
    all_to_all_cost_model,
    run_distributed_ffc,
    simulate_all_to_all,
)

D, N = 2, 8
FAULTS = [(0, 1, 1, 0, 1, 0, 0, 1), (1, 1, 1, 1, 0, 0, 0, 0)]


def main() -> None:
    print(f"Distributed FFC on B({D},{N}) ({D**N} processors), "
          f"{len(FAULTS)} failed processors\n")
    dist = run_distributed_ffc(D, N, FAULTS)
    central = find_fault_free_cycle(D, N, FAULTS)

    print(f"ring length (distributed)   : {len(dist.cycle)}")
    print(f"ring length (centralized)   : {central.length}")
    print(f"identical rings             : {list(dist.cycle) == list(central.cycle)}")
    print("communication steps:")
    print(f"  necklace probe            : {dist.probe_rounds}   (= n)")
    print(f"  broadcast                 : {dist.broadcast_steps}   (= eccentricity K)")
    print(f"  necklace coordination     : {dist.coordination_rounds}   (<= 2n + 1)")
    print(f"  total                     : {dist.total_steps}   (O(K + n))")
    print(f"messages delivered          : {dist.messages_delivered}")

    # all-to-all broadcast over disjoint rings (Chapter 3 motivation)
    d, n = 8, 2
    rings = [nodes_of_sequence(c, n) for c in disjoint_hamiltonian_cycles(d, n)]
    single = simulate_all_to_all(rings[:1])
    multi = simulate_all_to_all(rings)
    print(f"\nAll-to-all broadcast on B({d},{n}) ({d**n} nodes):")
    print(f"  1 ring : {single.steps} steps, busiest link carries "
          f"{single.per_link_payload} full messages")
    print(f"  {multi.rings} rings: {multi.steps} steps, busiest link carries "
          f"{multi.per_link_payload / multi.rings:.1f} full-message equivalents")
    model_1 = all_to_all_cost_model(d**n, 4096, 1, alpha=1, beta=0.001)
    model_t = all_to_all_cost_model(d**n, 4096, len(rings), alpha=1, beta=0.001)
    print(f"  alpha-beta model: {model_1:.0f} vs {model_t:.0f} time units "
          f"({model_1 / model_t:.2f}x speed-up)")


if __name__ == "__main__":
    main()
