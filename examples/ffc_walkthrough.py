#!/usr/bin/env python3
"""Walk through the paper's Example 2.1 step by step (Figures 2.1-2.4).

Processors 020 and 112 fail in the 27-node graph B(3,3).  The FFC algorithm:

1. removes the faulty necklaces, leaving the 21-node component B*;
2. builds the necklace adjacency graph N* (Figure 2.3);
3. derives a spanning tree T whose same-label edge groups are stars, from the
   BFS broadcast tree of B* (Figure 2.4a);
4. rewrites each star as a directed label cycle, giving the modified tree D
   (Figure 2.4b);
5. reads off each node's successor, producing the 21-node fault-free cycle H
   printed at the end of Example 2.1.

Run:  python examples/ffc_walkthrough.py
"""

from repro.core import find_fault_free_cycle, necklaces_visited_in_order

FAULTS = [(0, 2, 0), (1, 1, 2)]


def word(w) -> str:
    return "".join(map(str, w))


def necklace_name(nk) -> str:
    return "[" + word(nk.representative) + "]"


def main() -> None:
    result = find_fault_free_cycle(3, 3, FAULTS, root_hint=(0, 0, 0))

    print("Faulty processors:", ", ".join(word(f) for f in FAULTS))
    print(f"B* has {result.bstar.size} nodes in {len(result.adjacency.necklaces)} necklaces\n")

    print("Necklace adjacency graph N* (Figure 2.3) — edges grouped by label:")
    for label in result.adjacency.labels():
        members = result.adjacency.neighbours_by_label(label)
        names = ", ".join(sorted(necklace_name(nk) for nk in members))
        print(f"  w = {word(label)}: {names}")

    print("\nSpanning tree T (Figure 2.4a) — child <- parent (label):")
    for child, (parent, label) in sorted(result.spanning_tree.parent.items()):
        print(f"  {necklace_name(child)} <- {necklace_name(parent)}  (w = {word(label)})")

    print("\nModified tree D (Figure 2.4b) — directed label cycles:")
    for src, dst, label in result.modified_tree.edges():
        print(f"  {necklace_name(src)} -> {necklace_name(dst)}  (w = {word(label)})")

    print("\nFault-free cycle H (Example 2.1):")
    print("  " + ", ".join(word(w) for w in result.cycle))

    print("\nNecklace visit order (the Euler circuit J of Lemma 2.2):")
    walk = necklaces_visited_in_order(result)
    compressed = [walk[0]]
    for nk in walk[1:]:
        if nk != compressed[-1]:
            compressed.append(nk)
    print("  " + " -> ".join(necklace_name(nk) for nk in compressed))


if __name__ == "__main__":
    main()
