#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation in one go.

Runs the experiment registry of :mod:`repro.analysis.experiments` and prints
each reproduced table next to its identifier.  Pass ``--trials`` to change
the number of random-fault trials used for Tables 2.1/2.2 (the paper does not
state its trial count; 200 is the library default, 50 keeps this script
snappy).

Run:  python examples/reproduce_paper_tables.py [--trials 50]
"""

import argparse

from repro.analysis import available_experiments, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=50,
                        help="random-fault trials per row for Tables 2.1/2.2")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run only the named experiments")
    args = parser.parse_args()

    names = args.only if args.only else available_experiments()
    for name in names:
        kwargs = {"trials": args.trials} if name in ("table_2_1", "table_2_2") else {}
        description, text = run_experiment(name, **kwargs)
        print("=" * 78)
        print(f"{name}: {description}")
        print("-" * 78)
        print(text)
        print()


if __name__ == "__main__":
    main()
