#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation in one go.

Thin wrapper over the ``python -m repro experiment`` CLI (one orchestration
path — the experiment loop lives in :mod:`repro.cli`, not here).  Pass
``--trials`` to change the number of random-fault trials for Tables 2.1/2.2
(the paper does not state its trial count; 50 keeps this script snappy) and
``--workers`` to fan those trials out over a process pool — the rows are
bit-for-bit identical for any worker count.

Run:  python examples/reproduce_paper_tables.py [--trials 50] [--workers 4]
"""

import argparse

from repro.cli import main as cli_main


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=50,
                        help="random-fault trials per row for Tables 2.1/2.2")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the fault sweeps (0 = inline)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="run only the named experiments")
    args = parser.parse_args()

    argv = ["experiment", "--trials", str(args.trials), "--workers", str(args.workers)]
    argv += args.only if args.only else ["--all"]
    return cli_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
