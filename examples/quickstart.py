#!/usr/bin/env python3
"""Quickstart: embed a fault-free ring in a De Bruijn network with failed processors.

This is the 60-second tour of the library's main entry point,
:func:`repro.core.find_fault_free_cycle` — the Fault-Free Cycle (FFC)
algorithm of Rowley & Bose.  We build the 4096-node De Bruijn network
``B(4, 6)``, fail two processors, and recover a ring spanning every surviving
necklace, then check it against the paper's guarantee of ``d^n - n*f`` nodes.

Run:  python examples/quickstart.py
"""

from repro.core import find_fault_free_cycle, node_fault_cycle_bound

D, N = 4, 6
FAULTS = [(0, 1, 2, 3, 0, 1), (3, 3, 1, 0, 2, 2)]


def main() -> None:
    print(f"De Bruijn network B({D},{N}) with {D**N} processors")
    print(f"Failed processors: {['.'.join(map(str, f)) for f in FAULTS]}")

    result = find_fault_free_cycle(D, N, FAULTS)

    ring = result.embedding
    print(f"\nFault-free ring found: {len(ring)} processors")
    print(f"Guaranteed minimum    : {node_fault_cycle_bound(D, N, len(FAULTS))}")
    print(f"Dilation / congestion : {ring.dilation} / {ring.congestion}")
    print(f"Valid embedding       : {ring.is_valid()}")
    print(f"Meets paper guarantee : {result.meets_guarantee()}")

    first = " -> ".join("".join(map(str, w)) for w in result.cycle[:6])
    print(f"\nFirst ring nodes      : {first} -> ...")
    print(f"Surviving component   : {result.bstar.size} nodes "
          f"({len(result.adjacency.necklaces)} necklaces)")


if __name__ == "__main__":
    main()
